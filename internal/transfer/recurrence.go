package transfer

import (
	"fmt"
	"math/big"
	"math/bits"
)

// The O(log n) jump behind every analytic census: each scalar count
// sequence (trace of a transfer-matrix power, or a linear functional of
// the subset-automaton word-count vector) satisfies a linear recurrence
// whose order is at most the matrix dimension D (Cayley–Hamilton). We
// recover the *minimal* integer recurrence from an exact prefix:
//
//  1. run Berlekamp–Massey on the prefix reduced mod several fixed 62-bit
//     primes; the true minimal recurrence reduces to a valid mod-p
//     recurrence, so BM mod p returns order ≤ e, with equality (and the
//     exact coefficient image) unless p divides the relevant Hankel
//     determinant — at most finitely many "unlucky" primes;
//  2. CRT the coefficient vectors from the primes that agree on the
//     maximal order, and lift symmetrically to signed integers
//     (the minimal recurrence of an integer sequence with monic
//     characteristic support is integral by Gauss's lemma);
//  3. verify the candidate EXACTLY on prefix indices 0..D−1. Because the
//     degree-D characteristic recurrence annihilates the sequence, any
//     order-e relation that holds on a window of D consecutive indices
//     holds for all n — so step 3 is a deterministic proof, not a
//     probabilistic check. Failures (all primes unlucky) retry with more
//     primes.
//
// Evaluation at huge n is then the Kitamasa jump: compute x^n mod the
// recurrence polynomial by binary exponentiation-by-squaring — O(e² log n)
// big-int multiplies — and combine with the initial terms.

// crtPrimes are fixed 62-bit primes (the ten largest below 2^62), plenty
// for coefficient CRT: their product exceeds 2^600.
var crtPrimes = []uint64{
	4611686018427387847, 4611686018427387817, 4611686018427387787,
	4611686018427387761, 4611686018427387751, 4611686018427387737,
	4611686018427387733, 4611686018427387709, 4611686018427387701,
	4611686018427387631,
}

// maxRecurrenceOrder bounds the verified minimal order: the Kitamasa jump
// is O(e² log n) big multiplies, so e = 256 at n = 10^6 is already ~10^6
// multiplies. The MAJ panels sit far below (e ≤ 97).
const maxRecurrenceOrder = 256

func mulmod(a, b, p uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, p)
	return rem
}

func powmod(a, e, p uint64) uint64 {
	r := uint64(1)
	a %= p
	for e > 0 {
		if e&1 == 1 {
			r = mulmod(r, a, p)
		}
		a = mulmod(a, a, p)
		e >>= 1
	}
	return r
}

func invmod(a, p uint64) uint64 { return powmod(a, p-2, p) }

// berlekampMassey returns the minimal connection vector c for the
// sequence s over F_p, in the convention s[n] = Σ_{j} c[j]·s[n-1-j]
// (mod p) for all n ≥ len(c). The zero sequence yields an empty c.
func berlekampMassey(s []uint64, p uint64) []uint64 {
	var ls, cur []uint64
	lf := 0
	var ld uint64
	for i := 0; i < len(s); i++ {
		var t uint64
		for j := 0; j < len(cur); j++ {
			t = (t + mulmod(cur[j], s[i-1-j], p)) % p
		}
		d := (s[i] + p - t) % p
		if d == 0 {
			continue
		}
		if len(cur) == 0 {
			cur = make([]uint64, i+1)
			lf = i
			ld = d
			continue
		}
		k := mulmod(d, invmod(ld, p), p)
		c := make([]uint64, i-lf-1, i-lf+len(ls))
		c = append(c, k)
		for _, x := range ls {
			c = append(c, (p-mulmod(x, k, p))%p)
		}
		for len(c) < len(cur) {
			c = append(c, 0)
		}
		for j := range cur {
			c[j] = (c[j] + cur[j]) % p
		}
		if i-lf+len(ls) >= len(cur) {
			ls = append([]uint64(nil), cur...)
			lf = i
			ld = d
		}
		cur = c
	}
	for i := range cur {
		cur[i] %= p
	}
	return cur
}

// recurrence is a verified minimal integer linear recurrence
// u_{n+e} = Σ_{j=0}^{e-1} coeffs[j]·u_{n+j}, valid for all n ≥ 0,
// together with the exact prefix it was derived from (so small-n queries
// are lookups and the Kitamasa jump has its initial terms).
type recurrence struct {
	order  int
	coeffs []*big.Int // length order; may be negative
	prefix []*big.Int // exact terms u_0..u_{len-1}, len ≥ 2·order
}

// minimalRecurrence derives and exactly verifies the minimal recurrence of
// seq, whose annihilator degree is known to be ≤ bound (the transfer-matrix
// dimension). seq must hold at least 2·bound terms.
func minimalRecurrence(seq []*big.Int, bound int) (*recurrence, error) {
	if len(seq) < 2*bound {
		return nil, fmt.Errorf("transfer: prefix %d too short for annihilator bound %d", len(seq), bound)
	}
	allZero := true
	for _, t := range seq {
		if t.Sign() != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return &recurrence{order: 0, prefix: seq}, nil
	}
	tmp := new(big.Int)
	residues := func(p uint64) []uint64 {
		pb := new(big.Int).SetUint64(p)
		out := make([]uint64, len(seq))
		for i, t := range seq {
			out[i] = tmp.Mod(t, pb).Uint64()
		}
		return out
	}
	// Cache BM results per prime as we widen the CRT basis.
	type pmRes struct {
		p uint64
		c []uint64 // BM connection vector, order len(c)
	}
	var tried []pmRes
	for nprimes := 3; nprimes <= len(crtPrimes); nprimes++ {
		for len(tried) < nprimes {
			p := crtPrimes[len(tried)]
			tried = append(tried, pmRes{p: p, c: berlekampMassey(residues(p), p)})
		}
		e := 0
		for _, r := range tried {
			if len(r.c) > e {
				e = len(r.c)
			}
		}
		if e > maxRecurrenceOrder {
			return nil, fmt.Errorf("%w: minimal recurrence order %d exceeds cap %d", ErrTooLarge, e, maxRecurrenceOrder)
		}
		if e > bound {
			// BM overshot the provable annihilator degree — possible only
			// with a too-short prefix, which the guard above excludes.
			return nil, fmt.Errorf("transfer: BM order %d exceeds annihilator bound %d", e, bound)
		}
		// CRT the coefficients across primes that achieved the maximal
		// order — for those, the BM vector is the exact image of the true
		// minimal recurrence (the e×e Hankel system is nonsingular mod p).
		mod := big.NewInt(1)
		coeffs := make([]*big.Int, e)
		for j := range coeffs {
			coeffs[j] = new(big.Int)
		}
		for _, r := range tried {
			if len(r.c) != e {
				continue // unlucky prime: its Hankel determinant vanished
			}
			pb := new(big.Int).SetUint64(r.p)
			for j := 0; j < e; j++ {
				// BM convention: s[n] = Σ c[i]·s[n-1-i]; ours:
				// u_{n+e} = Σ coeffs[j]·u_{n+j} ⇒ coeffs[j] ≡ c[e-1-j].
				crtCombine(coeffs[j], mod, new(big.Int).SetUint64(r.c[e-1-j]), pb)
			}
			mod.Mul(mod, pb)
		}
		// Symmetric lift into (−mod/2, mod/2].
		half := new(big.Int).Rsh(mod, 1)
		for _, c := range coeffs {
			if c.Cmp(half) > 0 {
				c.Sub(c, mod)
			}
		}
		cand := &recurrence{order: e, coeffs: coeffs, prefix: seq}
		if cand.verify(bound) {
			return cand, nil
		}
		// Lift failed exact verification: either a coefficient exceeded the
		// CRT modulus or every prime so far was unlucky — widen and retry.
	}
	return nil, fmt.Errorf("transfer: no verified minimal recurrence within %d CRT primes", len(crtPrimes))
}

// crtCombine updates x (a residue mod m) to the unique residue mod m·p
// that is ≡ x (mod m) and ≡ r (mod p). m must be coprime to p.
func crtCombine(x, m, r, p *big.Int) {
	// x + m·t ≡ r (mod p)  ⇒  t = (r − x)·m⁻¹ mod p
	t := new(big.Int).Sub(r, x)
	t.Mod(t, p)
	mi := new(big.Int).ModInverse(new(big.Int).Mod(m, p), p)
	t.Mul(t, mi)
	t.Mod(t, p)
	x.Add(x, t.Mul(t, m))
}

// verify checks the recurrence exactly on prefix indices 0..bound−1. By
// Cayley–Hamilton the degree-`bound` characteristic recurrence annihilates
// the sequence, so an order-e relation verified on `bound` consecutive
// indices holds for every n ≥ 0: both sequences (the prefix and the
// candidate's extension) satisfy the same degree-`bound` recurrence and
// agree on `bound` initial terms.
func (rc *recurrence) verify(bound int) bool {
	e := rc.order
	if len(rc.prefix) < bound+e {
		return false
	}
	acc := new(big.Int)
	tmp := new(big.Int)
	for n := 0; n < bound; n++ {
		acc.SetInt64(0)
		for j, c := range rc.coeffs {
			if c.Sign() != 0 {
				acc.Add(acc, tmp.Mul(c, rc.prefix[n+j]))
			}
		}
		if acc.Cmp(rc.prefix[n+e]) != 0 {
			return false
		}
	}
	return true
}

// at evaluates u_n: a prefix lookup for small n, otherwise the Kitamasa
// jump — x^n mod q(x), q(x) = x^e − Σ coeffs[j]·x^j, by binary
// exponentiation (O(e² log n) big-int multiplies), then u_n = Σ a_j·u_j.
func (rc *recurrence) at(n uint64) *big.Int {
	if n < uint64(len(rc.prefix)) {
		return new(big.Int).Set(rc.prefix[n])
	}
	e := rc.order
	if e == 0 {
		return new(big.Int)
	}
	// Fold coefficients of degree ≥ e down via x^e ≡ Σ coeffs[j]·x^j.
	reduce := func(res []*big.Int, tmp *big.Int) []*big.Int {
		for i := len(res) - 1; i >= e; i-- {
			c := res[i]
			if c.Sign() != 0 {
				for j, q := range rc.coeffs {
					if q.Sign() != 0 {
						res[i-e+j].Add(res[i-e+j], tmp.Mul(c, q))
					}
				}
			}
		}
		return res[:e]
	}
	newPoly := func(size int) []*big.Int {
		if size < e {
			size = e // so the degree-e truncation in reduce is in range
		}
		res := make([]*big.Int, size)
		for i := range res {
			res[i] = new(big.Int)
		}
		return res
	}
	// res ← a² mod q; the symmetric half of the schoolbook products is
	// doubled instead of recomputed — squarings dominate the jump.
	sqred := func(a []*big.Int) []*big.Int {
		res := newPoly(2*len(a) - 1)
		tmp := new(big.Int)
		for i, ai := range a {
			if ai.Sign() == 0 {
				continue
			}
			for j := i + 1; j < len(a); j++ {
				if a[j].Sign() != 0 {
					res[i+j].Add(res[i+j], tmp.Mul(ai, a[j]))
				}
			}
		}
		for _, x := range res {
			x.Lsh(x, 1)
		}
		for i, ai := range a {
			if ai.Sign() != 0 {
				res[2*i].Add(res[2*i], tmp.Mul(ai, ai))
			}
		}
		return reduce(res, tmp)
	}
	// res ← a·x mod q: a degree shift plus one coefficient fold — e small
	// multiplies, so left-to-right exponentiation pays only for squarings.
	xred := func(a []*big.Int) []*big.Int {
		res := newPoly(len(a) + 1)
		for j, aj := range a {
			res[j+1] = aj
		}
		res[0] = new(big.Int)
		return reduce(res, new(big.Int))
	}
	// Left-to-right binary exponentiation of x^n mod q.
	var acc []*big.Int
	if e == 1 {
		acc = []*big.Int{new(big.Int).Set(rc.coeffs[0])}
	} else {
		acc = newPoly(e)
		acc[1].SetInt64(1)
	}
	for i := bits.Len64(n) - 2; i >= 0; i-- {
		acc = sqred(acc)
		if n>>uint(i)&1 == 1 {
			acc = xred(acc)
		}
	}
	out := new(big.Int)
	tmp := new(big.Int)
	for j, aj := range acc {
		if aj.Sign() != 0 {
			out.Add(out, tmp.Mul(aj, rc.prefix[j]))
		}
	}
	return out
}
