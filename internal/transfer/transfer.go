// Package transfer is the symbolic census engine for 1-D CA on rings:
// exact fixed-point, temporal two-cycle, and Garden-of-Eden counts at
// arbitrary ring size n — including n = 10^6 and beyond — in O(log n)
// after a one-time spectral derivation, with no enumeration of the 2^n
// configuration space.
//
// The construction (matrix.go) builds transfer matrices over the shared
// window-transition core of internal/debruijn: fixed points are
// trace(A^n) of the center-consistent window matrix, two-cycle states are
// trace(B^n) of the pair matrix encoding F(x)=y ∧ F(y)=x, and
// Garden-of-Eden counts come from the word-count DFA of the Boolean
// matrix monoid (a configuration has a preimage iff its per-symbol matrix
// product has nonzero trace). Rather than powering the matrices per
// query, the engine extracts each scalar sequence's minimal integer
// linear recurrence from an exact prefix — Berlekamp–Massey mod 62-bit
// primes, CRT, then deterministic exact verification over the
// Cayley–Hamilton window (recurrence.go) — and answers queries with the
// Kitamasa polynomial jump: O(e² log n) big-int multiplies, e ≤ 97 for
// the whole MAJ-3/MAJ-5 panels. An exact census at n = 10^6 takes well
// under a second per rule.
//
// Counts use the ring convention of internal/space (n ≥ 2r+1, distinct
// neighbors); the trace formulas are exact for every such n, so results
// agree integer-for-integer with phase-space enumeration wherever
// enumeration is feasible — that differential is CI-enforced (claim
// ST-AN, FuzzTransferCensus).
package transfer

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"repro/internal/debruijn"
	"repro/internal/rule"
)

// ErrTooLarge wraps every "construction exceeds an analytic cap" failure:
// pair matrices past MaxTraceDim, Boolean monoids past MaxMonoid, or
// recurrence orders past the jump's practicality cap. Callers that can
// fall back to enumeration should errors.Is against it.
var ErrTooLarge = errors.New("transfer: construction exceeds analytic caps")

// MaxEngineRadius is the largest rule radius an engine constructs at all
// (the debruijn window-count guard); individual quantities have tighter
// caps below.
const MaxEngineRadius = debruijn.MaxRadius

const (
	// MaxTraceDim caps the dense trace-prefix computation: the
	// fixed-point matrix has 2^(2r) rows (r ≤ 4), the pair matrix 2^(4r)
	// (r ≤ 2). The prefix pass is O(dim² · 2·dim) big-int adds.
	MaxTraceDim = 256
	// MaxMonoid caps the Garden-of-Eden Boolean matrix monoid. Radius-1
	// monoids top out at 120 elements; radius-2 majority-adjacent rules
	// reach ~2500; radius-2 k=3 exceeds 14000 and is rejected.
	MaxMonoid = 4096
)

// Engine holds the derived spectral data (verified minimal recurrences)
// for one (rule, radius) pair. Derivations are lazy, cached, and safe for
// concurrent use. Construction itself is cheap.
type Engine struct {
	win  *debruijn.Windows
	name string

	mu   sync.Mutex
	fp   *recurrence
	pair *recurrence
	goe  *recurrence
	fpE  error
	prE  error
	goE  error
}

// New builds an analytic census engine for rule rl at radius r.
func New(rl rule.Rule, r int) (*Engine, error) {
	win, err := debruijn.NewWindows(rl, r)
	if err != nil {
		return nil, err
	}
	return &Engine{win: win, name: rl.Name()}, nil
}

// MustNew is New that panics on error.
func MustNew(rl rule.Rule, r int) *Engine {
	e, err := New(rl, r)
	if err != nil {
		panic(err)
	}
	return e
}

// Radius returns the engine's rule radius.
func (e *Engine) Radius() int { return e.win.Radius() }

// RuleName returns the engine's rule name (memo keys build on it).
func (e *Engine) RuleName() string { return e.name }

// minRing is the smallest ring the space package (and hence every
// enumeration this engine must agree with) accepts: n ≥ 2r+1.
func (e *Engine) minRing() uint64 { return uint64(2*e.win.Radius() + 1) }

func (e *Engine) checkN(n uint64) error {
	if n < e.minRing() {
		return fmt.Errorf("transfer: ring size %d below 2r+1 = %d for rule %s", n, e.minRing(), e.name)
	}
	return nil
}

// fixedPointRec derives (once) the verified minimal recurrence of
// trace(A^m), annihilator bound dim(A) = 2^(2r).
func (e *Engine) fixedPointRec() (*recurrence, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fp == nil && e.fpE == nil {
		dim := e.win.Count()
		if dim > MaxTraceDim {
			e.fpE = fmt.Errorf("%w: fixed-point matrix is %d×%d (radius %d), cap %d",
				ErrTooLarge, dim, dim, e.win.Radius(), MaxTraceDim)
		} else {
			e.fp, e.fpE = traceRecurrence(fpEdges(e.win), dim)
		}
	}
	return e.fp, e.fpE
}

// pairRec derives (once) the verified minimal recurrence of trace(B^m),
// annihilator bound dim(B) = 2^(4r).
func (e *Engine) pairRec() (*recurrence, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pair == nil && e.prE == nil {
		dim := e.win.Count() * e.win.Count()
		if dim > MaxTraceDim {
			e.prE = fmt.Errorf("%w: pair matrix is %d×%d (radius %d), cap %d",
				ErrTooLarge, dim, dim, e.win.Radius(), MaxTraceDim)
		} else {
			e.pair, e.prE = traceRecurrence(pairEdges(e.win), dim)
		}
	}
	return e.pair, e.prE
}

// goeRec derives (once) the verified minimal recurrence of the
// Garden-of-Eden count sequence, annihilator bound = monoid size.
func (e *Engine) goeRec() (*recurrence, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.goe == nil && e.goE == nil {
		aut, err := buildGoeAutomaton(e.win)
		if err != nil {
			e.goE = err
		} else {
			e.goe, e.goE = dfaRecurrence(aut)
		}
	}
	return e.goe, e.goE
}

// FixedPoints returns the exact number of parallel fixed points of the
// rule on the n-ring, n ≥ 2r+1.
func (e *Engine) FixedPoints(n uint64) (*big.Int, error) {
	if err := e.checkN(n); err != nil {
		return nil, err
	}
	rc, err := e.fixedPointRec()
	if err != nil {
		return nil, err
	}
	return rc.at(n), nil
}

// TwoCycleStates returns the exact number of configurations on temporal
// two-cycles (period exactly 2), i.e. #{x : F²(x)=x} − #{x : F(x)=x}.
func (e *Engine) TwoCycleStates(n uint64) (*big.Int, error) {
	if err := e.checkN(n); err != nil {
		return nil, err
	}
	rc, err := e.pairRec()
	if err != nil {
		return nil, err
	}
	fp, err := e.FixedPoints(n)
	if err != nil {
		return nil, err
	}
	states := rc.at(n)
	states.Sub(states, fp)
	if states.Sign() < 0 {
		return nil, fmt.Errorf("transfer: internal invariant violated: FP2 < FP at n=%d for %s", n, e.name)
	}
	return states, nil
}

// TwoCycles returns the exact number of temporal two-cycles (unordered
// pairs {x, F(x)} with F²(x)=x ≠ F(x)).
func (e *Engine) TwoCycles(n uint64) (*big.Int, error) {
	states, err := e.TwoCycleStates(n)
	if err != nil {
		return nil, err
	}
	if states.Bit(0) != 0 {
		return nil, fmt.Errorf("transfer: internal invariant violated: odd 2-cycle state count at n=%d for %s", n, e.name)
	}
	return states.Rsh(states, 1), nil
}

// GardenOfEden returns the exact number of configurations with no
// preimage under the parallel map on the n-ring.
func (e *Engine) GardenOfEden(n uint64) (*big.Int, error) {
	if err := e.checkN(n); err != nil {
		return nil, err
	}
	rc, err := e.goeRec()
	if err != nil {
		return nil, err
	}
	return rc.at(n), nil
}

// WithPreimage returns 2^n − GardenOfEden(n), the exact size of the
// image of the parallel map.
func (e *Engine) WithPreimage(n uint64) (*big.Int, error) {
	goe, err := e.GardenOfEden(n)
	if err != nil {
		return nil, err
	}
	img := Configs(n)
	return img.Sub(img, goe), nil
}

// Configs returns 2^n, the configuration count of the n-ring.
func Configs(n uint64) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(n))
}

// Census is the full analytic (ST-quantity) census of a rule on the
// n-ring: exact big-integer counts of the quantities the transfer
// formalism reaches. Quantities requiring trajectory structure (transient
// lengths, basin geometry) are inherently enumerative and not here.
type Census struct {
	N              uint64
	Configs        *big.Int // 2^n
	FixedPoints    *big.Int
	TwoCycles      *big.Int // unordered temporal 2-cycles
	TwoCycleStates *big.Int // configurations on them, = 2·TwoCycles
	GardenOfEden   *big.Int // configurations with no preimage
	WithPreimage   *big.Int // 2^n − GardenOfEden
	Orders         [3]int   // recurrence orders (fp, pair, goe) — the jump cost drivers
}

// TakeCensus computes the full analytic census at n. It fails if any of
// the three constructions exceeds its cap (errors.Is(err, ErrTooLarge));
// callers wanting partial results use the individual methods. The three
// Kitamasa jumps are independent and run concurrently — at n = 10^6 each
// works on ~10^6-bit coefficients, and the wall time is the slowest jump,
// not the sum.
func (e *Engine) TakeCensus(n uint64) (*Census, error) {
	if err := e.checkN(n); err != nil {
		return nil, err
	}
	fpRec, err := e.fixedPointRec()
	if err != nil {
		return nil, err
	}
	pairRec, err := e.pairRec()
	if err != nil {
		return nil, err
	}
	goeRec, err := e.goeRec()
	if err != nil {
		return nil, err
	}
	var fp, fp2, goe *big.Int
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { defer wg.Done(); fp = fpRec.at(n) }()
	go func() { defer wg.Done(); fp2 = pairRec.at(n) }()
	go func() { defer wg.Done(); goe = goeRec.at(n) }()
	wg.Wait()
	states := new(big.Int).Sub(fp2, fp)
	if states.Sign() < 0 || states.Bit(0) != 0 {
		return nil, fmt.Errorf("transfer: internal invariant violated: FP2=%s vs FP=%s at n=%d for %s", fp2, fp, n, e.name)
	}
	c := &Census{
		N:              n,
		Configs:        Configs(n),
		FixedPoints:    fp,
		TwoCycles:      new(big.Int).Rsh(states, 1),
		TwoCycleStates: states,
		GardenOfEden:   goe,
	}
	c.WithPreimage = new(big.Int).Sub(c.Configs, goe)
	c.Orders = [3]int{fpRec.order, pairRec.order, goeRec.order}
	return c, nil
}

// Package-level engine cache: spectral derivation is the expensive part
// (seconds for radius-2 pair/GoE), so engines are shared per
// (rule name, radius), first-writer-wins, bounded like the phase-space
// memo store.
var (
	cacheMu sync.Mutex
	cache   = map[string]*Engine{}
)

const maxCachedEngines = 64

// Cached returns a shared engine for (rl, r), creating and retaining it
// on first use. Rule names are assumed to identify rule semantics, the
// same convention the phase-space memo fingerprints rely on.
func Cached(rl rule.Rule, r int) (*Engine, error) {
	key := fmt.Sprintf("%s|r=%d", rl.Name(), r)
	cacheMu.Lock()
	if e, ok := cache[key]; ok {
		cacheMu.Unlock()
		return e, nil
	}
	cacheMu.Unlock()
	e, err := New(rl, r)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if prior, ok := cache[key]; ok {
		return prior, nil // racing creator won; keep its derivations
	}
	if len(cache) < maxCachedEngines {
		cache[key] = e
	}
	return e, nil
}

// ResetCache drops all cached engines (tests and memory-pressure hooks).
func ResetCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = map[string]*Engine{}
}
