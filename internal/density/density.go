// Package density implements the density-classification task — the classic
// benchmark of the CA literature the paper cites (Wolfram, refs [20-22]) —
// as an application of the repository's engines: given a random initial
// configuration, a CA should converge to all-1s when the initial density
// of 1s exceeds ½ and to all-0s otherwise.
//
// Two contestants are provided:
//
//   - The Gacs–Kurdyumov–Levin (GKL) rule, the standard hand-designed
//     radius-3 classifier (~80% accuracy near density ½). GKL reads
//     different neighbors depending on the cell's own state and is
//     therefore *not* symmetric — it lies outside the paper's threshold
//     class, and its sequential behavior is not covered by Theorem 1.
//   - Plain local MAJORITY (radius 1 or 3), which famously fails the task:
//     it freezes into striped block fixed points instead of reaching
//     consensus; its convergence (to the *wrong* answers) is exactly what
//     Proposition 1 guarantees.
//
// The comparison quantifies the paper's point from another angle: the
// threshold CA the paper studies are simple enough to have fully
// classifiable dynamics — and correspondingly weak as global computers.
package density

import (
	"fmt"
	"math/rand"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/rule"
	"repro/internal/space"
)

// GKL returns the Gacs–Kurdyumov–Levin rule as a radius-3 table rule
// (7 ordered inputs: offsets −3..−1, self, +1..+3):
//
//	if s_i = 0: next = majority(s_i, s_{i−1}, s_{i−3})
//	if s_i = 1: next = majority(s_i, s_{i+1}, s_{i+3})
func GKL() *rule.Table {
	return rule.FromFunc("gkl", 7, func(nb []uint8) uint8 {
		// nb indices: 0:−3 1:−2 2:−1 3:self 4:+1 5:+2 6:+3
		self := nb[3]
		var a, b uint8
		if self == 0 {
			a, b = nb[2], nb[0] // −1, −3
		} else {
			a, b = nb[4], nb[6] // +1, +3
		}
		if int(self)+int(a)+int(b) >= 2 {
			return 1
		}
		return 0
	})
}

// Verdict classifies the outcome of one run.
type Verdict int

const (
	// Correct: the orbit reached the consensus fixed point matching the
	// initial majority.
	Correct Verdict = iota
	// Wrong: the orbit reached the opposite consensus.
	Wrong
	// Unsettled: no consensus within the step budget (blocked stripes,
	// cycles, or slow transients).
	Unsettled
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Correct:
		return "correct"
	case Wrong:
		return "wrong"
	default:
		return "unsettled"
	}
}

// ClassifyRun runs automaton a from x0 for at most maxSteps parallel steps
// and scores the density-classification outcome. Initial densities of
// exactly ½ are rejected (the task is undefined there).
func ClassifyRun(a *automaton.Automaton, x0 config.Config, maxSteps int) Verdict {
	n := x0.N()
	ones := x0.Ones()
	if 2*ones == n {
		panic("density: initial density exactly 1/2")
	}
	wantOne := 2*ones > n
	res := a.Converge(x0.Clone(), maxSteps)
	if res.Outcome != automaton.FixedPointOutcome {
		return Unsettled
	}
	switch res.Final.Ones() {
	case n:
		if wantOne {
			return Correct
		}
		return Wrong
	case 0:
		if !wantOne {
			return Correct
		}
		return Wrong
	default:
		return Unsettled // converged, but not to a consensus state
	}
}

// Result tallies a benchmark sweep.
type Result struct {
	Rule      string
	N         int
	Trials    int
	Correct   int
	Wrong     int
	Unsettled int
}

// Accuracy returns the fraction of correct classifications.
func (r Result) Accuracy() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Trials)
}

// String renders one summary line.
func (r Result) String() string {
	return fmt.Sprintf("%s n=%d trials=%d correct=%d wrong=%d unsettled=%d acc=%.2f",
		r.Rule, r.N, r.Trials, r.Correct, r.Wrong, r.Unsettled, r.Accuracy())
}

// Benchmark scores a rule on trials random initial configurations with
// densities drawn near ½ (each cell i.i.d. fair-coin, rejecting exact ties).
// The ring size n and the rule's radius must be compatible.
func Benchmark(name string, r rule.Rule, radius, n, trials int, seed int64, maxSteps int) Result {
	a, err := automaton.New(space.Ring(n, radius), r)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	res := Result{Rule: name, N: n, Trials: trials}
	for t := 0; t < trials; t++ {
		var x0 config.Config
		for {
			x0 = config.Random(rng, n, 0.5)
			if 2*x0.Ones() != n {
				break
			}
		}
		switch ClassifyRun(a, x0, maxSteps) {
		case Correct:
			res.Correct++
		case Wrong:
			res.Wrong++
		default:
			res.Unsettled++
		}
	}
	return res
}
