package density

import (
	"math/rand"
	"testing"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/rule"
	"repro/internal/space"
)

func TestGKLIsRadius7Table(t *testing.T) {
	g := GKL()
	if g.Arity() != 7 {
		t.Fatalf("GKL arity %d", g.Arity())
	}
	// Known values: all-zero neighborhood stays 0; all-one stays 1.
	if g.Next(make([]uint8, 7)) != 0 {
		t.Error("GKL should preserve quiescence")
	}
	ones := []uint8{1, 1, 1, 1, 1, 1, 1}
	if g.Next(ones) != 1 {
		t.Error("GKL should fix all-ones")
	}
	// Self=0 ignores the right side entirely.
	in := []uint8{1, 0, 1, 0, 1, 1, 1} // self=0, left(-1)=1, left(-3)=1
	if g.Next(in) != 1 {
		t.Error("self=0 with both left taps 1 should fire")
	}
	in2 := []uint8{0, 1, 0, 0, 1, 1, 1} // self=0, -1=0, -3=0 → 0 despite right 1s
	if g.Next(in2) != 0 {
		t.Error("self=0 must ignore right taps")
	}
}

func TestGKLNotSymmetricNotMonotone(t *testing.T) {
	g := GKL()
	if rule.IsSymmetric(g, 7) {
		t.Error("GKL should not be totalistic")
	}
	// GKL is actually monotone (majority of monotone selections with
	// state-dependent taps): verify whichever way it falls, consistently.
	mono := rule.IsMonotone(g, 7)
	if _, isTh := rule.IsThreshold(g, 7); isTh {
		t.Error("GKL must not be a threshold rule")
	}
	_ = mono // documented by the assertion below on dynamics
}

func TestGKLConsensusFixedPoints(t *testing.T) {
	n := 30
	a, err := automaton.New(space.Ring(n, 3), GKL())
	if err != nil {
		t.Fatal(err)
	}
	zero := config.New(n)
	onesC := zero.Complement()
	if !a.FixedPoint(zero) || !a.FixedPoint(onesC) {
		t.Fatal("consensus states must be GKL fixed points")
	}
}

func TestGKLClassifiesEasyDensities(t *testing.T) {
	// Far from the ½ threshold the task is easy: density 0.2 and 0.8.
	n := 99
	a, err := automaton.New(space.Ring(n, 3), GKL())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		lo := config.Random(rng, n, 0.2)
		if 2*lo.Ones() != n {
			if v := ClassifyRun(a, lo, 400); v != Correct {
				t.Errorf("trial %d low density: %v", trial, v)
			}
		}
		hi := config.Random(rng, n, 0.8)
		if 2*hi.Ones() != n {
			if v := ClassifyRun(a, hi, 400); v != Correct {
				t.Errorf("trial %d high density: %v", trial, v)
			}
		}
	}
}

func TestBenchmarkGKLBeatsMajority(t *testing.T) {
	// The headline comparison: near density ½ on a 149-ring (the standard
	// size in the literature), GKL classifies most instances; plain local
	// majority almost never reaches consensus.
	n, trials := 149, 60
	gkl := Benchmark("gkl", GKL(), 3, n, trials, 1, 600)
	maj := Benchmark("majority3", rule.Majority(3), 3, n, trials, 1, 600)
	if gkl.Accuracy() < 0.7 {
		t.Errorf("GKL accuracy %.2f below 0.7: %s", gkl.Accuracy(), gkl)
	}
	if maj.Accuracy() > 0.3 {
		t.Errorf("local majority should fail the task, got %s", maj)
	}
	if gkl.Accuracy() <= maj.Accuracy() {
		t.Errorf("GKL (%.2f) should beat majority (%.2f)", gkl.Accuracy(), maj.Accuracy())
	}
}

func TestMajorityFreezesIntoStripes(t *testing.T) {
	// The failure mode: majority converges (Prop 1) but to striped non-
	// consensus fixed points.
	n := 99
	a, err := automaton.New(space.Ring(n, 1), rule.Majority(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	stripes := 0
	for trial := 0; trial < 20; trial++ {
		x0 := config.Random(rng, n, 0.5)
		if 2*x0.Ones() == n {
			continue
		}
		res := a.Converge(x0.Clone(), 400)
		if res.Outcome == automaton.FixedPointOutcome &&
			res.Final.Ones() != 0 && res.Final.Ones() != n {
			stripes++
		}
	}
	if stripes < 15 {
		t.Errorf("expected striped fixed points to dominate, got %d/20", stripes)
	}
}

func TestClassifyRunPanicsOnTie(t *testing.T) {
	a, err := automaton.New(space.Ring(4, 1), rule.Majority(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("density ½ accepted")
		}
	}()
	ClassifyRun(a, config.MustParse("0101"), 10)
}

func TestVerdictString(t *testing.T) {
	if Correct.String() != "correct" || Wrong.String() != "wrong" || Unsettled.String() != "unsettled" {
		t.Error("verdict strings wrong")
	}
}

func BenchmarkGKLClassification(b *testing.B) {
	n := 149
	a, err := automaton.New(space.Ring(n, 3), GKL())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x0 := config.Random(rng, n, 0.45)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassifyRun(a, x0, 600)
	}
}
