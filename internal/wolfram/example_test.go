package wolfram_test

import (
	"fmt"

	"repro/internal/wolfram"
)

// Classifying an elementary rule: 232 is the paper's MAJORITY.
func ExampleClassify() {
	c := wolfram.Classify(232)
	fmt.Println("symmetric:", c.Symmetric)
	fmt.Println("monotone: ", c.Monotone)
	fmt.Println("threshold k:", c.ThresholdK)
	// Output:
	// symmetric: true
	// monotone:  true
	// threshold k: 2
}

// The E19 census: which hypotheses of Theorem 1 are load-bearing.
func ExampleTakeCensus() {
	c := wolfram.TakeCensus(5)
	fmt.Println("thresholds:", c.Thresholds)
	fmt.Println("monotone but sequentially cyclic:", c.MonotoneButCyclic)
	// Output:
	// thresholds: [0 128 232 254 255]
	// monotone but sequentially cyclic: [170 240]
}
