// Package wolfram classifies the 256 elementary cellular automata (ECA) —
// the radius-1 Boolean rules of refs [20-22] — and uses them to probe the
// paper's §4 question: *at what point of increasing rule complexity do the
// possible sequential computations catch up with the concurrent ones?*
//
// For each rule code the package decides the structural properties the
// paper's results hinge on (symmetric/totalistic, monotone, threshold,
// quiescent-preserving, self-dual), plus two classical CA properties for
// breadth (additivity over GF(2) and number conservation), and the dynamic
// property at the heart of the paper: whether the rule's *sequential* phase
// space is cycle-free on rings.
//
// The headline census (experiment E19): among all 256 ECA, sequential
// acyclicity on rings coincides neither with monotonicity nor with
// symmetry alone — e.g. the monotone shift rule 170 cycles sequentially —
// but every monotone *and* symmetric (= threshold) rule is acyclic,
// exactly the class Theorem 1 identifies.
package wolfram

import (
	"fmt"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/phasespace"
	"repro/internal/rule"
	"repro/internal/space"
)

// Class records the structural classification of one elementary rule.
type Class struct {
	Code      uint8
	Symmetric bool // totalistic: output depends only on #1s
	Monotone  bool
	// ThresholdK is the k of the equivalent k-of-3 threshold, or −1 when
	// the rule is not a threshold (i.e. not monotone-symmetric).
	ThresholdK int
	Quiescent  bool // f(0,0,0) = 0
	SelfDual   bool
	// Additive: f(x ⊕ y) = f(x) ⊕ f(y) — the GF(2)-linear rules (e.g. 90, 150).
	Additive bool
	// NumberConserving: the rule preserves the number of 1s on every ring
	// (verified exhaustively on rings n = 3..9; for radius 1 this window is
	// conclusive — e.g. rule 184, the traffic rule).
	NumberConserving bool
	// Mirror and Conjugate are the codes of the left-right reflected rule
	// and of the 0↔1 complement-conjugated rule; together they generate the
	// standard 4-element equivalence class of an ECA.
	Mirror    uint8
	Conjugate uint8
}

// Classify computes the structural class of one rule code.
func Classify(code uint8) Class {
	t := rule.Elementary(code)
	c := Class{
		Code:       code,
		Symmetric:  rule.IsSymmetric(t, 3),
		Monotone:   rule.IsMonotone(t, 3),
		ThresholdK: -1,
		Quiescent:  rule.IsQuiescent(t, 3),
		SelfDual:   rule.SelfDual(t, 3),
		Additive:   isAdditive(t),
		Mirror:     CodeOf(rule.Reflect(t, 3)),
		Conjugate:  CodeOf(rule.Complement(t, 3)),
	}
	if k, ok := rule.IsThreshold(t, 3); ok {
		c.ThresholdK = k
	}
	c.NumberConserving = isNumberConserving(t)
	return c
}

// ClassifyAll classifies all 256 elementary rules.
func ClassifyAll() []Class {
	out := make([]Class, 256)
	for code := 0; code < 256; code++ {
		out[code] = Classify(uint8(code))
	}
	return out
}

// CodeOf recovers the Wolfram code of a 3-input table rule.
func CodeOf(t *rule.Table) uint8 {
	if t.Arity() != 3 {
		panic(fmt.Sprintf("wolfram: rule arity %d", t.Arity()))
	}
	var code uint8
	for i := uint64(0); i < 8; i++ {
		// table index encodes (l, c, r) LSB-first; Wolfram bit is l<<2|c<<1|r.
		l, c, r := i&1, i>>1&1, i>>2&1
		if t.Lookup(i) == 1 {
			code |= 1 << (l<<2 | c<<1 | r)
		}
	}
	return code
}

// isAdditive reports GF(2)-linearity: f(x ⊕ y) = f(x) ⊕ f(y) for all input
// pairs (this forces f(0) = 0).
func isAdditive(t *rule.Table) bool {
	for x := uint64(0); x < 8; x++ {
		for y := uint64(0); y < 8; y++ {
			if t.Lookup(x^y) != t.Lookup(x)^t.Lookup(y) {
				return false
			}
		}
	}
	return true
}

// isNumberConserving checks density conservation exhaustively on rings of
// 3..9 cells.
func isNumberConserving(t *rule.Table) bool {
	for n := 3; n <= 9; n++ {
		a, err := automaton.New(space.Ring(n, 1), t)
		if err != nil {
			return false
		}
		dst := config.New(n)
		conserves := true
		config.Space(n, func(_ uint64, c config.Config) {
			a.Step(dst, c)
			if dst.Ones() != c.Ones() {
				conserves = false
			}
		})
		if !conserves {
			return false
		}
	}
	return true
}

// SequentiallyAcyclic reports whether rule code's sequential phase space on
// an n-ring is cycle-free (no update sequence ever revisits a left
// configuration) — the property Theorem 1 guarantees for thresholds.
func SequentiallyAcyclic(code uint8, n int) bool {
	a, err := automaton.New(space.Ring(n, 1), rule.Elementary(code))
	if err != nil {
		panic(err)
	}
	_, ok := phasespace.BuildSequential(a).Acyclic()
	return ok
}

// MaxParallelPeriod returns the longest cycle period in the parallel phase
// space of rule code on an n-ring.
func MaxParallelPeriod(code uint8, n int) int {
	a, err := automaton.New(space.Ring(n, 1), rule.Elementary(code))
	if err != nil {
		panic(err)
	}
	return phasespace.BuildParallel(a).MaxPeriod()
}

// Census aggregates the E19 sweep over all 256 rules on one ring size.
type Census struct {
	N int // ring size used for the dynamic properties

	Monotone              []uint8 // rules that are monotone
	Symmetric             []uint8
	Thresholds            []uint8 // monotone ∧ symmetric
	Additive              []uint8
	NumberConservingRules []uint8

	SequentiallyAcyclic []uint8 // cycle-free sequential phase space on the n-ring
	// MonotoneButCyclic are monotone rules whose SCA nonetheless cycle —
	// the witnesses that Theorem 1's symmetry hypothesis is essential.
	MonotoneButCyclic []uint8
	// AcyclicButNotThreshold are sequentially acyclic rules outside the
	// threshold class — sequential acyclicity is strictly weaker than
	// being a threshold rule.
	AcyclicButNotThreshold []uint8
}

// TakeCensus sweeps all 256 rules on an n-ring (n ≤ 10 keeps it fast).
func TakeCensus(n int) Census {
	c := Census{N: n}
	for code := 0; code < 256; code++ {
		cl := Classify(uint8(code))
		if cl.Monotone {
			c.Monotone = append(c.Monotone, cl.Code)
		}
		if cl.Symmetric {
			c.Symmetric = append(c.Symmetric, cl.Code)
		}
		if cl.ThresholdK >= 0 {
			c.Thresholds = append(c.Thresholds, cl.Code)
		}
		if cl.Additive {
			c.Additive = append(c.Additive, cl.Code)
		}
		if cl.NumberConserving {
			c.NumberConservingRules = append(c.NumberConservingRules, cl.Code)
		}
		acyclic := SequentiallyAcyclic(cl.Code, n)
		if acyclic {
			c.SequentiallyAcyclic = append(c.SequentiallyAcyclic, cl.Code)
			if cl.ThresholdK < 0 {
				c.AcyclicButNotThreshold = append(c.AcyclicButNotThreshold, cl.Code)
			}
		} else if cl.Monotone {
			c.MonotoneButCyclic = append(c.MonotoneButCyclic, cl.Code)
		}
	}
	return c
}
