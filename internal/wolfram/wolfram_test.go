package wolfram

import (
	"testing"

	"repro/internal/rule"
)

func contains(xs []uint8, v uint8) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestClassifyMajority232(t *testing.T) {
	c := Classify(232)
	if !c.Symmetric || !c.Monotone || c.ThresholdK != 2 {
		t.Errorf("rule 232: %+v", c)
	}
	if !c.Quiescent || !c.SelfDual {
		t.Errorf("rule 232 quiescent/self-dual: %+v", c)
	}
	if c.Mirror != 232 || c.Conjugate != 232 {
		t.Errorf("rule 232 should be mirror- and conjugate-invariant: %+v", c)
	}
	if c.Additive || c.NumberConserving {
		t.Errorf("rule 232 misclassified: %+v", c)
	}
}

func TestClassifyParity150(t *testing.T) {
	c := Classify(150)
	if !c.Symmetric || c.Monotone || c.ThresholdK != -1 || !c.Additive {
		t.Errorf("rule 150: %+v", c)
	}
}

func TestClassifyShift170(t *testing.T) {
	c := Classify(170) // f(l,c,r) = r
	if c.Symmetric || !c.Monotone {
		t.Errorf("rule 170: %+v", c)
	}
	if !c.NumberConserving {
		t.Error("shift must conserve density")
	}
	if c.Mirror != 240 { // f = l
		t.Errorf("mirror of 170 = %d, want 240", c.Mirror)
	}
}

func TestKnownEquivalences(t *testing.T) {
	// Mirror and conjugate of rule 110 are 124 and 137 (standard tables).
	c := Classify(110)
	if c.Mirror != 124 {
		t.Errorf("mirror(110) = %d, want 124", c.Mirror)
	}
	if c.Conjugate != 137 {
		t.Errorf("conjugate(110) = %d, want 137", c.Conjugate)
	}
	// Rule 90's class: mirror-invariant, conjugate 165.
	c90 := Classify(90)
	if c90.Mirror != 90 || c90.Conjugate != 165 {
		t.Errorf("rule 90 equivalences: %+v", c90)
	}
}

func TestMirrorAndConjugateAreInvolutions(t *testing.T) {
	for code := 0; code < 256; code++ {
		c := Classify(uint8(code))
		if Classify(c.Mirror).Mirror != uint8(code) {
			t.Fatalf("mirror not involutive at %d", code)
		}
		if Classify(c.Conjugate).Conjugate != uint8(code) {
			t.Fatalf("conjugate not involutive at %d", code)
		}
	}
}

func TestCodeOfRoundTrip(t *testing.T) {
	for code := 0; code < 256; code++ {
		if got := CodeOf(rule.Elementary(uint8(code))); got != uint8(code) {
			t.Fatalf("CodeOf(Elementary(%d)) = %d", code, got)
		}
	}
}

func TestAdditiveRulesExactSet(t *testing.T) {
	// GF(2)-linear 3-input rules: f = a·l ⊕ b·c ⊕ c·r, 8 in total.
	want := map[uint8]bool{0: true, 60: true, 90: true, 102: true,
		150: true, 170: true, 204: true, 240: true}
	for code := 0; code < 256; code++ {
		c := Classify(uint8(code))
		if c.Additive != want[uint8(code)] {
			t.Errorf("rule %d additive = %v, want %v", code, c.Additive, want[uint8(code)])
		}
	}
}

func TestNumberConservingExactSet(t *testing.T) {
	// The five radius-1 number-conserving rules: identity, the two shifts,
	// and the traffic rule with its mirror.
	want := map[uint8]bool{204: true, 170: true, 240: true, 184: true, 226: true}
	for code := 0; code < 256; code++ {
		c := Classify(uint8(code))
		if c.NumberConserving != want[uint8(code)] {
			t.Errorf("rule %d number-conserving = %v, want %v", code, c.NumberConserving, want[uint8(code)])
		}
	}
}

func TestThresholdRulesExactSet(t *testing.T) {
	// k-of-3 thresholds as ECA codes: const-0, AND, MAJ, OR, const-1.
	want := map[uint8]int{0: 4, 128: 3, 232: 2, 254: 1, 255: 0}
	for code := 0; code < 256; code++ {
		c := Classify(uint8(code))
		k, isTh := want[uint8(code)]
		if isTh {
			// Constant-one threshold materializes with k = 0; the constant-
			// zero rule's minimal k is any value > 3 — IsThreshold reports
			// m+1 = 4.
			if c.ThresholdK != k {
				t.Errorf("rule %d threshold k = %d, want %d", code, c.ThresholdK, k)
			}
		} else if c.ThresholdK != -1 {
			t.Errorf("rule %d spuriously classified as threshold k=%d", code, c.ThresholdK)
		}
	}
}

func TestMonotoneCountIsDedekind3(t *testing.T) {
	// There are exactly 20 monotone Boolean functions of 3 variables.
	count := 0
	for code := 0; code < 256; code++ {
		if Classify(uint8(code)).Monotone {
			count++
		}
	}
	if count != 20 {
		t.Errorf("monotone ECA count = %d, want 20 (Dedekind)", count)
	}
}

func TestSymmetricCountIs16(t *testing.T) {
	count := 0
	for code := 0; code < 256; code++ {
		if Classify(uint8(code)).Symmetric {
			count++
		}
	}
	if count != 16 {
		t.Errorf("symmetric ECA count = %d, want 16", count)
	}
}

func TestSequentialAcyclicityOfKeyRules(t *testing.T) {
	n := 6
	// All five thresholds are acyclic (Theorem 1).
	for _, code := range []uint8{0, 128, 232, 254, 255} {
		if !SequentiallyAcyclic(code, n) {
			t.Errorf("threshold rule %d sequentially cyclic", code)
		}
	}
	// Parity cycles (non-monotone).
	if SequentiallyAcyclic(150, n) {
		t.Error("rule 150 should cycle sequentially")
	}
	// The monotone shift rule 170 cycles: symmetry is essential in Thm 1.
	if SequentiallyAcyclic(170, n) {
		t.Error("rule 170 should cycle sequentially despite monotonicity")
	}
}

func TestCensusShape(t *testing.T) {
	c := TakeCensus(5)
	if len(c.Thresholds) != 5 {
		t.Errorf("thresholds: %v", c.Thresholds)
	}
	if len(c.Monotone) != 20 || len(c.Symmetric) != 16 {
		t.Errorf("monotone %d symmetric %d", len(c.Monotone), len(c.Symmetric))
	}
	// Every threshold rule must be in the acyclic set.
	for _, th := range c.Thresholds {
		if !contains(c.SequentiallyAcyclic, th) {
			t.Errorf("threshold rule %d missing from acyclic set", th)
		}
	}
	// Rule 170 witnesses monotone-but-cyclic.
	if !contains(c.MonotoneButCyclic, 170) {
		t.Errorf("rule 170 missing from MonotoneButCyclic: %v", c.MonotoneButCyclic)
	}
	// The identity rule 204 is acyclic (every update is a no-op) but not a
	// threshold: sequential acyclicity is strictly weaker.
	if !contains(c.AcyclicButNotThreshold, 204) {
		t.Errorf("rule 204 missing from AcyclicButNotThreshold: %v", c.AcyclicButNotThreshold)
	}
	if len(c.NumberConservingRules) != 5 || len(c.Additive) != 8 {
		t.Errorf("number-conserving %v additive %v", c.NumberConservingRules, c.Additive)
	}
}

func TestMaxParallelPeriod(t *testing.T) {
	// Majority on an even ring: max period 2.
	if p := MaxParallelPeriod(232, 8); p != 2 {
		t.Errorf("rule 232 max period %d, want 2", p)
	}
	// Shift rule on an n-ring cycles with period dividing n; on 6-ring the
	// max period is 6.
	if p := MaxParallelPeriod(170, 6); p != 6 {
		t.Errorf("rule 170 max period %d, want 6", p)
	}
	// Identity: everything is a fixed point.
	if p := MaxParallelPeriod(204, 6); p != 1 {
		t.Errorf("rule 204 max period %d, want 1", p)
	}
}

func TestCensusAcyclicityConsistentAcrossSizes(t *testing.T) {
	// Acyclicity verdicts for the five thresholds and the two witnesses
	// must agree between ring sizes 4 and 7 (the phenomenon is not a
	// small-size artifact).
	for _, code := range []uint8{0, 128, 232, 254, 255, 150, 170} {
		if SequentiallyAcyclic(code, 4) != SequentiallyAcyclic(code, 7) {
			t.Errorf("rule %d: acyclicity differs between n=4 and n=7", code)
		}
	}
}

func BenchmarkClassifyAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ClassifyAll()
	}
}

func BenchmarkCensus6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TakeCensus(6)
	}
}
