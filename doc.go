// Package repro is a complete, from-scratch reproduction of
//
//	P. Tošić, G. Agha: "Concurrency vs. Sequential Interleavings in 1-D
//	Threshold Cellular Automata", IPDPS (IPPS) 2004,
//
// as a reusable Go library. It implements classical parallel cellular
// automata, sequential CA (SCA) under arbitrary update schedules, and the
// paper's proposed genuinely asynchronous CA (ACA) with communication
// delays, together with full phase-space enumeration and classification,
// the Lyapunov (energy) theory explaining the results, the §1.1
// interleaving register machine, SDS/SyDS over arbitrary graphs, and a
// word-packed high-performance simulator.
//
// The root package is a thin facade over the internal packages; see
// README.md for the architecture and EXPERIMENTS.md for the paper-vs-
// measured record of every reproduced result. The runnable entry points
// live in cmd/ (ca-run, ca-phase, ca-experiments) and examples/.
package repro
