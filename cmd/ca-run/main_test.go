package main

import "testing"

func TestParseRule(t *testing.T) {
	if r, err := parseRule("majority", 1); err != nil || r.Name() != "threshold(k=2)" {
		t.Errorf("majority: %v %v", r, err)
	}
	if r, err := parseRule("xor", 1); err != nil || r.Name() != "xor" {
		t.Errorf("xor: %v %v", r, err)
	}
	if r, err := parseRule("eca:90", 1); err != nil || r.Name() != "eca-90" {
		t.Errorf("eca:90: %v %v", r, err)
	}
	for _, bad := range []string{"eca:256", "eca:-1", "threshold:z", "??"} {
		if _, err := parseRule(bad, 1); err == nil {
			t.Errorf("parseRule(%q) accepted", bad)
		}
	}
}

func TestParseStart(t *testing.T) {
	if c, err := parseStart("alternating", 6, 0.5, 1); err != nil || c.String() != "010101" {
		t.Errorf("alternating: %v %v", c, err)
	}
	if c, err := parseStart("zero", 4, 0.5, 1); err != nil || c.Ones() != 0 {
		t.Errorf("zero: %v %v", c, err)
	}
	if c, err := parseStart("one", 4, 0.5, 1); err != nil || c.Ones() != 4 {
		t.Errorf("one: %v %v", c, err)
	}
	if c, err := parseStart("random", 100, 0.3, 7); err != nil || c.Ones() == 0 || c.Ones() == 100 {
		t.Errorf("random: %v %v", c, err)
	}
	if c, err := parseStart("0110", 4, 0.5, 1); err != nil || c.String() != "0110" {
		t.Errorf("literal: %v %v", c, err)
	}
	if _, err := parseStart("0110", 5, 0.5, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := parseStart("01x0", 4, 0.5, 1); err == nil {
		t.Error("bad literal accepted")
	}
}

func TestParseOrder(t *testing.T) {
	for _, good := range []string{"roundrobin", "random", "randomfair"} {
		if _, err := parseOrder(good, 4, 1); err != nil {
			t.Errorf("parseOrder(%q): %v", good, err)
		}
	}
	if _, err := parseOrder("bogus", 4, 1); err == nil {
		t.Error("bogus order accepted")
	}
}

func TestRunSmokeAllModes(t *testing.T) {
	if err := run(8, 1, "majority", "parallel", "roundrobin", "alternating", 0.5, 2, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(8, 1, "majority", "sequential", "randomfair", "random", 0.5, 2, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(6, 1, "majority", "async", "roundrobin", "alternating", 0.5, 2, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(6, 1, "eca:110", "parallel", "roundrobin", "random", 0.5, 2, 1, true); err == nil {
		t.Fatal("3-input table rule on a truncated line should fail arity validation")
	}
	if err := run(6, 1, "majority", "nosuchmode", "roundrobin", "zero", 0.5, 2, 1, false); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
