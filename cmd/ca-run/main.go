// Command ca-run simulates a 1-D threshold (or elementary/XOR) cellular
// automaton and prints an ASCII space-time diagram.
//
// Usage examples:
//
//	ca-run -n 32 -rule majority -start alternating -steps 8
//	ca-run -n 32 -rule xor -mode sequential -order random -steps 64 -seed 7
//	ca-run -n 64 -rule eca:110 -start random -density 0.3 -steps 40
//	ca-run -n 16 -rule majority -mode async -steps 200 -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/async"
	"repro/internal/automaton"
	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/render"
	"repro/internal/rule"
	"repro/internal/space"
	"repro/internal/update"
)

func main() {
	var (
		n        = flag.Int("n", 32, "number of cells")
		r        = flag.Int("r", 1, "neighborhood radius")
		ruleSpec = flag.String("rule", "majority", "rule: majority | threshold:K | xor | eca:CODE")
		mode     = flag.String("mode", "parallel", "update mode: parallel | sequential | async")
		order    = flag.String("order", "roundrobin", "sequential order: roundrobin | random | randomfair")
		start    = flag.String("start", "alternating", "start: alternating | zero | one | random | <bitstring>")
		density  = flag.Float64("density", 0.5, "density of 1s for -start random")
		steps    = flag.Int("steps", 16, "global steps (sweeps for sequential; events/n for async)")
		seed     = flag.Int64("seed", 1, "random seed")
		line     = flag.Bool("line", false, "use a bounded line instead of a ring")
	)
	prof := cli.NewProfile()
	flag.Parse()
	cli.Exit2("ca-run", cli.First(
		cli.Positive("-n", *n),
		cli.NonNegative("-r", *r),
		cli.Positive("-steps", *steps),
		cli.Probability("-density", *density),
	))
	stopProf := prof.MustStart("ca-run")
	stopSig := prof.FlushOnInterrupt("ca-run")

	err := run(*n, *r, *ruleSpec, *mode, *order, *start, *density, *steps, *seed, *line)
	stopSig()
	stopProf() // explicit: os.Exit below skips defers
	if err != nil {
		fmt.Fprintln(os.Stderr, "ca-run:", err)
		os.Exit(1)
	}
}

func run(n, r int, ruleSpec, mode, order, start string, density float64, steps int, seed int64, line bool) error {
	rl, err := parseRule(ruleSpec, r)
	if err != nil {
		return err
	}
	var sp space.Space
	if line {
		sp = space.Line(n, r)
	} else {
		sp = space.Ring(n, r)
	}
	a, err := automaton.New(sp, rl)
	if err != nil {
		return err
	}
	x0, err := parseStart(start, n, density, seed)
	if err != nil {
		return err
	}
	fmt.Printf("# %s on %s, mode=%s\n", rl.Name(), sp.Name(), mode)

	switch mode {
	case "parallel":
		return render.SpaceTime(os.Stdout, a, x0, steps)
	case "sequential":
		sched, err := parseOrder(order, n, seed)
		if err != nil {
			return err
		}
		c := x0.Clone()
		fmt.Printf("t=  0 %s\n", render.Row(c))
		for t := 1; t <= steps; t++ {
			a.RunSequential(c, sched, n) // one sweep-equivalent per row
			fmt.Printf("t=%3d %s\n", t, render.Row(c))
		}
		return nil
	case "async":
		e := async.NewEngine(a, x0, async.UniformLatency(0, 1.5), seed)
		rng := rand.New(rand.NewSource(seed + 1))
		tnow := 0.0
		for i := 0; i < steps*n; i++ {
			tnow += rng.Float64()
			e.ScheduleUpdate(tnow, rng.Intn(n))
		}
		row := 0
		e.OnUpdate = func(tm float64, node int, old, new uint8) {
			if old != new {
				fmt.Printf("t=%7.2f node %3d %s\n", tm, node, render.Row(e.Config()))
				row++
			}
		}
		fmt.Printf("t=   0.00 init     %s\n", render.Row(x0))
		e.Run(1 << 30)
		fmt.Printf("# %d update events, %d state changes\n", e.Updates(), row)
		return nil
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

func parseRule(spec string, r int) (rule.Rule, error) {
	switch {
	case spec == "majority":
		return rule.Majority(r), nil
	case spec == "xor":
		return rule.XOR{}, nil
	case strings.HasPrefix(spec, "threshold:"):
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "threshold:"))
		if err != nil {
			return nil, fmt.Errorf("bad threshold spec %q", spec)
		}
		return rule.Threshold{K: k}, nil
	case strings.HasPrefix(spec, "eca:"):
		code, err := strconv.Atoi(strings.TrimPrefix(spec, "eca:"))
		if err != nil || code < 0 || code > 255 {
			return nil, fmt.Errorf("bad elementary rule spec %q", spec)
		}
		return rule.Elementary(uint8(code)), nil
	default:
		return nil, fmt.Errorf("unknown rule %q", spec)
	}
}

func parseStart(start string, n int, density float64, seed int64) (config.Config, error) {
	switch start {
	case "alternating":
		return config.Alternating(n, 0), nil
	case "zero":
		return config.New(n), nil
	case "one":
		c := config.New(n)
		for i := 0; i < n; i++ {
			c.Set(i, 1)
		}
		return c, nil
	case "random":
		return config.Random(rand.New(rand.NewSource(seed)), n, density), nil
	default:
		c, err := config.Parse(start)
		if err != nil {
			return config.Config{}, fmt.Errorf("bad start %q: %v", start, err)
		}
		if c.N() != n {
			return config.Config{}, fmt.Errorf("start string has %d cells, want %d", c.N(), n)
		}
		return c, nil
	}
}

func parseOrder(order string, n int, seed int64) (update.Schedule, error) {
	switch order {
	case "roundrobin":
		return update.NewRoundRobin(n), nil
	case "random":
		return update.NewRandom(n, seed), nil
	case "randomfair":
		return update.NewRandomFair(n, seed), nil
	default:
		return nil, fmt.Errorf("unknown order %q", order)
	}
}
