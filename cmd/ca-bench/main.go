// Command ca-bench runs the repository's benchmark suite (the E01–E27
// experiment benchmarks plus the BenchmarkAblation_* ablations in
// bench_test.go) and writes the results as machine-readable JSON, one file
// per run:
//
//	ca-bench                         # run everything, write BENCH_<date>.json
//	ca-bench -bench 'Ablation'       # only the ablations
//	ca-bench -out results.json       # explicit output path
//	ca-bench -parse -input raw.txt   # convert an existing `go test -bench` log
//	ca-bench -serve-load             # load-test ca-serve, write BENCH_<date>.serve.json
//
// The tool shells out to `go test -run ^$ -bench <pattern> -benchmem .` in
// the module root, parses the standard benchmark output lines, and emits
//
//	{"date": "...", "go": "...", "results": [{"name": ..., "ns_per_op": ...,
//	 "bytes_per_op": ..., "allocs_per_op": ...}, ...]}
//
// so CI and EXPERIMENTS.md updates can diff performance across commits
// without scraping free-form text.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"

	"repro/internal/cli"
)

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		out       = flag.String("out", "", "output path (default BENCH_<yyyy-mm-dd>.json)")
		dir       = flag.String("dir", ".", "module directory to benchmark")
		parse     = flag.Bool("parse", false, "parse an existing benchmark log instead of running go test")
		input     = flag.String("input", "", "benchmark log to parse (with -parse; default stdin)")
		timeout   = flag.Duration("timeout", 30*time.Minute, "go test timeout")
		benchtime = flag.String("benchtime", "", "go test -benchtime value, e.g. 0.2s or 100x (default: go's)")
		compare   = flag.String("compare", "", "baseline report JSON to diff against; regressions beyond -threshold fail")
		threshold = flag.Float64("threshold", 15, "ns/op slowdown percentage treated as a regression (with -compare)")
		memThresh = flag.Float64("mem-threshold", -1, "B/op or peak-B growth percentage treated as a regression (with -compare; -1 = off)")

		serveLoad     = flag.Bool("serve-load", false, "run the ca-serve load generator instead of go test benchmarks")
		serveURL      = flag.String("serve-url", "", "ca-serve base URL to load (empty = start a server in-process)")
		serveFaults   = flag.String("serve-faults", "", "fault plan for the in-process server (with empty -serve-url)")
		loadConc      = flag.Int("load-concurrency", 8, "concurrent workers in the mixed-load phase")
		loadReqs      = flag.Int("load-requests", 200, "total requests in the mixed-load phase")
		loadQPS       = flag.Int("load-qps", 0, "request-start rate limit (0 = unpaced)")
		loadHot       = flag.Float64("load-hot", 0.8, "fraction of mixed-load requests on the hot key")
		loadHerd      = flag.Int("load-herd", 64, "thundering-herd size on one cold key (0 = skip)")
		loadCoalesce  = flag.Int64("load-min-coalesce", -1, "gate: herd must coalesce at least this many waiters (-1 = off)")
		loadMax5xx    = flag.Int64("load-max-5xx", -1, "gate: budget for 5xx beyond injected faults and shedding (-1 = off)")
		loadReqFaults = flag.Bool("load-require-faults", false, "gate: the server's fault ledger must be non-empty")
	)
	prof := cli.NewProfile()
	flag.Parse()
	cli.Exit2("ca-bench", cli.First(
		cli.PositiveDuration("-timeout", *timeout),
		cli.Writable("-out", *out),
		cli.Positive("-load-concurrency", *loadConc),
		cli.NonNegative("-load-requests", *loadReqs),
		cli.NonNegative("-load-qps", *loadQPS),
		cli.NonNegative("-load-herd", *loadHerd),
		cli.Probability("-load-hot", *loadHot),
	))
	stopProf := prof.MustStart("ca-bench")
	stopSig := prof.FlushOnInterrupt("ca-bench")
	var err error
	if *serveLoad {
		err = runServeLoad(serveLoadOptions{
			URL:           *serveURL,
			Faults:        *serveFaults,
			Concurrency:   *loadConc,
			Requests:      *loadReqs,
			QPS:           *loadQPS,
			HotRatio:      *loadHot,
			HerdK:         *loadHerd,
			MinCoalesce:   *loadCoalesce,
			Max5xx:        *loadMax5xx,
			RequireFaults: *loadReqFaults,
			Timeout:       *timeout,
		}, *out)
	} else {
		err = run(*bench, *out, *dir, *input, *compare, *benchtime, *parse, *timeout, *threshold, *memThresh)
	}
	stopSig()
	stopProf() // explicit: the os.Exit paths below skip defers
	if err != nil {
		fmt.Fprintln(os.Stderr, "ca-bench:", err)
		if errors.Is(err, errRegression) {
			os.Exit(regressionExitCode)
		}
		if errors.Is(err, errSLO) {
			os.Exit(sloExitCode)
		}
		os.Exit(1)
	}
}

// errRegression marks a comparison that found slowdowns past the threshold.
var errRegression = errors.New("performance regression beyond threshold")

// regressionExitCode distinguishes "benchmarks regressed" from operational
// failures so CI can report it precisely.
const regressionExitCode = 3

func run(bench, out, dir, input, compare, benchtime string, parseOnly bool, timeout time.Duration, threshold, memThreshold float64) error {
	var raw []byte
	var err error
	if parseOnly {
		if input == "" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(input)
		}
		if err != nil {
			return err
		}
	} else {
		args := []string{"test", "-run", "^$",
			"-bench", bench, "-benchmem", "-timeout", timeout.String()}
		if benchtime != "" {
			args = append(args, "-benchtime", benchtime)
		}
		args = append(args, ".")
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		cmd.Stderr = os.Stderr
		raw, err = cmd.Output()
		if err != nil {
			return fmt.Errorf("go test -bench: %w", err)
		}
	}

	results := parseBenchLines(string(raw))
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines found")
	}
	report := Report{
		Date:    time.Now().Format("2006-01-02"),
		Go:      runtime.Version(),
		Bench:   bench,
		Results: results,
	}
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", report.Date)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), out)

	if compare != "" {
		baseline, err := loadReport(compare)
		if err != nil {
			return fmt.Errorf("-compare: %w", err)
		}
		deltas, regressions := compareReports(baseline, &report, threshold, memThreshold)
		gate := fmt.Sprintf("threshold %+.0f%% ns/op", threshold)
		if memThreshold >= 0 {
			gate += fmt.Sprintf(", %+.0f%% B/op or peak-B", memThreshold)
		}
		fmt.Printf("\ncomparison against %s (%s):\n", compare, gate)
		printDeltas(os.Stdout, deltas, threshold, memThreshold)
		if len(regressions) > 0 {
			return fmt.Errorf("%w: %d benchmark(s) worse than baseline beyond the gate (%s)",
				errRegression, len(regressions), gate)
		}
		fmt.Println("no regressions beyond threshold")
	}
	return nil
}
