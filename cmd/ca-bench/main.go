// Command ca-bench runs the repository's benchmark suite (the E01–E26
// experiment benchmarks plus the BenchmarkAblation_* ablations in
// bench_test.go) and writes the results as machine-readable JSON, one file
// per run:
//
//	ca-bench                         # run everything, write BENCH_<date>.json
//	ca-bench -bench 'Ablation'       # only the ablations
//	ca-bench -out results.json       # explicit output path
//	ca-bench -parse -input raw.txt   # convert an existing `go test -bench` log
//
// The tool shells out to `go test -run ^$ -bench <pattern> -benchmem .` in
// the module root, parses the standard benchmark output lines, and emits
//
//	{"date": "...", "go": "...", "results": [{"name": ..., "ns_per_op": ...,
//	 "bytes_per_op": ..., "allocs_per_op": ...}, ...]}
//
// so CI and EXPERIMENTS.md updates can diff performance across commits
// without scraping free-form text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"

	"repro/internal/cli"
)

func main() {
	var (
		bench   = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		out     = flag.String("out", "", "output path (default BENCH_<yyyy-mm-dd>.json)")
		dir     = flag.String("dir", ".", "module directory to benchmark")
		parse   = flag.Bool("parse", false, "parse an existing benchmark log instead of running go test")
		input   = flag.String("input", "", "benchmark log to parse (with -parse; default stdin)")
		timeout = flag.Duration("timeout", 30*time.Minute, "go test timeout")
	)
	flag.Parse()
	cli.Exit2("ca-bench", cli.First(
		cli.PositiveDuration("-timeout", *timeout),
		cli.Writable("-out", *out),
	))
	if err := run(*bench, *out, *dir, *input, *parse, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "ca-bench:", err)
		os.Exit(1)
	}
}

func run(bench, out, dir, input string, parseOnly bool, timeout time.Duration) error {
	var raw []byte
	var err error
	if parseOnly {
		if input == "" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(input)
		}
		if err != nil {
			return err
		}
	} else {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", bench, "-benchmem", "-timeout", timeout.String(), ".")
		cmd.Dir = dir
		cmd.Stderr = os.Stderr
		raw, err = cmd.Output()
		if err != nil {
			return fmt.Errorf("go test -bench: %w", err)
		}
	}

	results := parseBenchLines(string(raw))
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines found")
	}
	report := Report{
		Date:    time.Now().Format("2006-01-02"),
		Go:      runtime.Version(),
		Bench:   bench,
		Results: results,
	}
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", report.Date)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), out)
	return nil
}
