package main

// Load generation for ca-serve (-serve-load). The generator drives the
// phase-space server through the three regimes its robustness claims are
// about — a thundering herd on one cold key (coalescing), an over-cap
// query (graceful degradation), and a hot/cold mixed workload at fixed
// concurrency (admission + cache) — and writes a machine-readable report
// (BENCH_<date>.serve.json) with client-side latency quantiles and the
// server's own counters. CI gates on the report: coalescing below
// -load-min-coalesce, unexpected 5xx above -load-max-5xx, or a fault plan
// that never fired (-load-require-faults) exit with status 4.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// errSLO marks a load run that violated a gate; main maps it to
// sloExitCode so CI can tell "server out of SLO" from operational failure.
var errSLO = errors.New("serve-load SLO gate violated")

const sloExitCode = 4

// serveLoadOptions configures one load run.
type serveLoadOptions struct {
	URL           string // target server; empty = start one in-process
	Faults        string // fault plan for the in-process server
	Concurrency   int
	Requests      int
	QPS           int     // request-start rate limit; 0 = unpaced
	HotRatio      float64 // fraction of mixed-phase requests on the hot key
	HerdK         int     // herd size; 0 skips the herd phase
	MinCoalesce   int64   // gate: herd must deduplicate ≥ this many requests; <0 disables
	Max5xx        int64   // gate: unexpected 5xx budget; <0 disables
	RequireFaults bool    // gate: the fault ledger must be non-empty
	Timeout       time.Duration
}

// ServeLoadReport is the JSON document a load run writes.
type ServeLoadReport struct {
	Date      string `json:"date"`
	URL       string `json:"url"`
	InProcess bool   `json:"in_process"`

	Herd struct {
		K         int   `json:"k"`
		OK        int   `json:"ok"`
		Injected  int   `json:"injected"`  // responses the fault plan forced
		Builds    int64 `json:"builds"`    // flight builds the herd caused
		Coalesced int64 `json:"coalesced"` // waiters that joined the in-flight build
		Deduped   int64 `json:"deduped"`   // K - builds: requests that did not build
		Identical bool  `json:"identical_bodies"`
	} `json:"herd"`

	DegradedProbe struct {
		N        int  `json:"n"`
		Status   int  `json:"status"`
		Degraded bool `json:"degraded"`
	} `json:"degraded_probe"`

	Load struct {
		Requests    int                     `json:"requests"`
		Concurrency int                     `json:"concurrency"`
		QPS         int                     `json:"qps,omitempty"`
		HotRatio    float64                 `json:"hot_ratio"`
		Statuses    map[string]int          `json:"statuses"`
		Client      serve.HistogramSnapshot `json:"client_latency"`
	} `json:"load"`

	Server        serve.MetricsSnapshot `json:"server"`
	Unexpected5xx int64                 `json:"unexpected_5xx"`
	FaultsFired   int                   `json:"faults_fired"`
	GateFailures  []string              `json:"gate_failures,omitempty"`
}

// runServeLoad executes the load phases against opts.URL (or an
// in-process server) and writes the report to out (default
// BENCH_<date>.serve.json). A gate violation returns errSLO after the
// report is written — the report always lands.
func runServeLoad(opts serveLoadOptions, out string) error {
	rep := &ServeLoadReport{Date: time.Now().Format("2006-01-02")}
	base := opts.URL
	if base == "" {
		var stop func()
		var err error
		base, stop, err = startInProcess(opts.Faults)
		if err != nil {
			return err
		}
		defer stop()
		rep.InProcess = true
	}
	rep.URL = base
	client := &http.Client{Timeout: opts.Timeout}
	if err := waitReady(client, base, 10*time.Second); err != nil {
		return err
	}

	nonce := time.Now().UnixNano()
	var gates []string

	// Phase 1: thundering herd on one cold key. Metrics deltas around the
	// phase prove the invariant: K misses, one build.
	if opts.HerdK > 0 {
		before, err := metrics(client, base)
		if err != nil {
			return err
		}
		herdURL := fmt.Sprintf("%s/v1/census?n=14&rule=majority&engine=enum&tag=herd-%d", base, nonce)
		bodies := make([][]byte, opts.HerdK)
		codes := make([]int, opts.HerdK)
		injected := make([]bool, opts.HerdK)
		var wg sync.WaitGroup
		for i := 0; i < opts.HerdK; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var hdr http.Header
				codes[i], bodies[i], hdr = fetch(client, herdURL)
				injected[i] = hdr.Get("X-Injected-Fault") != ""
			}(i)
		}
		wg.Wait()
		after, err := metrics(client, base)
		if err != nil {
			return err
		}
		rep.Herd.K = opts.HerdK
		rep.Herd.Builds = after.Builds - before.Builds
		rep.Herd.Coalesced = after.Coalesced - before.Coalesced
		rep.Herd.Deduped = int64(opts.HerdK) - rep.Herd.Builds
		// Identity is judged across the 200s; responses the fault plan
		// forced (marked X-Injected-Fault) are deliberate, not failures.
		rep.Herd.Identical = true
		var first []byte
		for i := 0; i < opts.HerdK; i++ {
			switch {
			case injected[i]:
				rep.Herd.Injected++
			case codes[i] == http.StatusOK:
				rep.Herd.OK++
				if first == nil {
					first = bodies[i]
				} else if !bytes.Equal(bodies[i], first) {
					rep.Herd.Identical = false
				}
			}
		}
		if rep.Herd.OK+rep.Herd.Injected != opts.HerdK {
			gates = append(gates, fmt.Sprintf("herd: %d/%d requests OK (%d injected)",
				rep.Herd.OK, opts.HerdK, rep.Herd.Injected))
		}
		if !rep.Herd.Identical {
			gates = append(gates, "herd: bodies not byte-identical")
		}
		if rep.Herd.Builds != 1 {
			gates = append(gates, fmt.Sprintf("herd: %d builds for one key, want 1", rep.Herd.Builds))
		}
		// Gate on deduplicated requests (K - builds) rather than the raw
		// coalesced counter: a waiter arriving just after the build
		// completes is a cache hit, not a coalesce, and both satisfy the
		// one-build invariant the gate is really about.
		if opts.MinCoalesce >= 0 && rep.Herd.Deduped < opts.MinCoalesce {
			gates = append(gates, fmt.Sprintf("herd: %d deduplicated of %d < required %d",
				rep.Herd.Deduped, opts.HerdK, opts.MinCoalesce))
		}
	}

	// Phase 2: over-cap probe — must degrade to an analytic 200, never
	// 5xx. An injected fault landing on the probe is retried: injection is
	// deterministic in the request sequence, so the next attempt advances
	// past it.
	rep.DegradedProbe.N = 150
	var code int
	var body []byte
	for attempt := 0; attempt < 5; attempt++ {
		var hdr http.Header
		code, body, hdr = fetch(client, fmt.Sprintf("%s/v1/census?n=%d&rule=majority", base, rep.DegradedProbe.N))
		if hdr.Get("X-Injected-Fault") == "" {
			break
		}
	}
	rep.DegradedProbe.Status = code
	var probe struct {
		Degraded bool `json:"degraded"`
	}
	_ = json.Unmarshal(body, &probe)
	rep.DegradedProbe.Degraded = probe.Degraded
	if code != http.StatusOK || !probe.Degraded {
		gates = append(gates, fmt.Sprintf("degraded probe: status %d degraded=%v, want 200/true", code, probe.Degraded))
	}

	// Phase 3: mixed hot/cold load at fixed concurrency. Hot requests
	// revisit one key (cache hits after the first); cold requests carry a
	// fresh tag each, so every one is a genuine build competing for
	// admission.
	rep.Load.Requests = opts.Requests
	rep.Load.Concurrency = opts.Concurrency
	rep.Load.QPS = opts.QPS
	rep.Load.HotRatio = opts.HotRatio
	rep.Load.Statuses = map[string]int{}
	var hist serve.Histogram
	var mu sync.Mutex
	var pace <-chan time.Time
	if opts.QPS > 0 {
		t := time.NewTicker(time.Second / time.Duration(opts.QPS))
		defer t.Stop()
		pace = t.C
	}
	coldRules := []string{"majority", "xor", "threshold:1", "threshold:3", "eca:110"}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				var u string
				// Interleaved deterministic mix: request i is hot iff its
				// residue mod 100 falls under the ratio, so hot and cold
				// alternate at any request count.
				if float64(i%100)/100 < opts.HotRatio {
					u = fmt.Sprintf("%s/v1/census?n=12&rule=majority&tag=hot-%d", base, nonce)
				} else {
					u = fmt.Sprintf("%s/v1/census?n=%d&rule=%s&engine=enum&tag=cold-%d-%d",
						base, 9+i%4, coldRules[i%len(coldRules)], nonce, i)
				}
				start := time.Now()
				code, _, _ := fetch(client, u)
				hist.Observe(time.Since(start))
				mu.Lock()
				rep.Load.Statuses[fmt.Sprintf("%d", code)]++
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opts.Requests; i++ {
		if pace != nil {
			<-pace
		}
		work <- i
	}
	close(work)
	wg.Wait()
	rep.Load.Client = hist.Snapshot()

	// Final server-side accounting. Unexpected 5xx excludes what the
	// server did on purpose: injected faults and load-shedding 503s.
	final, err := metrics(client, base)
	if err != nil {
		return err
	}
	rep.Server = *final
	rep.FaultsFired = len(final.FaultLedger)
	rep.Unexpected5xx = final.ServerErrors - final.Injected - final.ShedFull - final.ShedWait
	if rep.Unexpected5xx < 0 {
		rep.Unexpected5xx = 0
	}
	if opts.Max5xx >= 0 && rep.Unexpected5xx > opts.Max5xx {
		gates = append(gates, fmt.Sprintf("unexpected 5xx: %d > budget %d", rep.Unexpected5xx, opts.Max5xx))
	}
	if opts.RequireFaults && rep.FaultsFired == 0 {
		gates = append(gates, "fault plan configured but never fired")
	}
	rep.GateFailures = gates

	if out == "" {
		out = fmt.Sprintf("BENCH_%s.serve.json", rep.Date)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote serve-load report to %s (herd builds %d, coalesced %d, unexpected 5xx %d)\n",
		out, rep.Herd.Builds, rep.Herd.Coalesced, rep.Unexpected5xx)
	if len(gates) > 0 {
		return fmt.Errorf("%w: %d gate(s): %v", errSLO, len(gates), gates)
	}
	return nil
}

// startInProcess boots a serve.Server on a loopback port for self-
// contained load runs (no external ca-serve needed).
func startInProcess(faults string) (url string, stop func(), err error) {
	var plan *faultinject.Plan
	if faults != "" {
		plan, err = faultinject.Parse(faults)
		if err != nil {
			return "", nil, err
		}
	}
	s, err := serve.New(serve.Config{Faults: plan})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

// waitReady polls /readyz until it answers 200.
func waitReady(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v (last err %v)", base, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetch GETs u and returns status, body and headers; transport errors
// report as status 0.
func fetch(client *http.Client, u string) (int, []byte, http.Header) {
	resp, err := client.Get(u)
	if err != nil {
		return 0, nil, nil
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body, resp.Header
}

// metrics fetches and decodes /metrics.
func metrics(client *http.Client, base string) (*serve.MetricsSnapshot, error) {
	code, body, _ := fetch(client, base+"/metrics")
	if code != http.StatusOK {
		return nil, fmt.Errorf("/metrics answered %d", code)
	}
	var m serve.MetricsSnapshot
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("/metrics: %v", err)
	}
	return &m, nil
}
