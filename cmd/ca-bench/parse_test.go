package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE01_Fig1aParallelXOR-8   	  500000	      2450 ns/op	     128 B/op	       4 allocs/op
BenchmarkAblation_PackedVsScalarBuild/packed-8         	     100	  11289000 ns/op
BenchmarkAblation_PackedVsScalarBuild/scalar-8         	       3	 422665110 ns/op
BenchmarkAblation_StepWorkers/workers=4-8              	    2000	    921000 ns/op	4096.00 MB/s
BenchmarkAblation_PORPrune/por-8                       	     100	   1000000 ns/op	       693.0 schedules/op
BenchmarkNoSuffix 	    1000	      55.5 ns/op
some interleaved test output
PASS
ok  	repro	12.3s
`

func TestParseBenchLines(t *testing.T) {
	rs := parseBenchLines(sampleLog)
	if len(rs) != 6 {
		t.Fatalf("parsed %d results, want 6", len(rs))
	}
	first := rs[0]
	if first.Name != "BenchmarkE01_Fig1aParallelXOR" {
		t.Errorf("name %q (GOMAXPROCS suffix should be stripped)", first.Name)
	}
	if first.Iterations != 500000 || first.NsPerOp != 2450 || first.BytesPerOp != 128 || first.AllocsPerOp != 4 {
		t.Errorf("first result %+v", first)
	}
	if rs[1].Name != "BenchmarkAblation_PackedVsScalarBuild/packed" {
		t.Errorf("sub-benchmark name %q", rs[1].Name)
	}
	if rs[3].MBPerSec != 4096 {
		t.Errorf("MB/s %v", rs[3].MBPerSec)
	}
	if rs[4].Extra["schedules/op"] != 693 {
		t.Errorf("custom metric capture %v", rs[4].Extra)
	}
	if rs[4].BytesPerOp != 0 || rs[4].MBPerSec != 0 {
		t.Errorf("custom metric leaked into a builtin field: %+v", rs[4])
	}
	if rs[5].NsPerOp != 55.5 {
		t.Errorf("fractional ns/op %v", rs[5].NsPerOp)
	}
	// The parsed ablation pair carries the speedup evidence.
	if ratio := rs[2].NsPerOp / rs[1].NsPerOp; ratio < 4 {
		t.Errorf("sample packed/scalar ratio %.1f < 4", ratio)
	}
}

func TestParseBenchLinesEmpty(t *testing.T) {
	if rs := parseBenchLines("PASS\nok repro 1s\n"); rs != nil {
		t.Errorf("parsed %v from a result-free log", rs)
	}
}

func TestRunParseMode(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(in, []byte(sampleLog), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "bench.json")
	if err := run(".", out, dir, in, "", "", true, time.Minute, 15, -1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 6 || rep.Go == "" || rep.Date == "" {
		t.Errorf("report %+v", rep)
	}
}

func TestRunParseModeRejectsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(in, []byte("no benchmarks here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(".", filepath.Join(dir, "x.json"), dir, in, "", "", true, time.Minute, 15, -1); err == nil {
		t.Fatal("empty log accepted")
	}
}
