package main

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

func loadOpts(url string) serveLoadOptions {
	return serveLoadOptions{
		URL:         url,
		Concurrency: 4,
		Requests:    40,
		HotRatio:    0.8,
		HerdK:       16,
		MinCoalesce: -1,
		Max5xx:      -1,
		Timeout:     time.Minute,
	}
}

// TestServeLoadAgainstHealthyServer: a clean server passes every phase,
// and the report records one herd build with coalesced waiters, a
// degraded over-cap probe, and latency quantiles.
func TestServeLoadAgainstHealthyServer(t *testing.T) {
	s, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	out := filepath.Join(t.TempDir(), "load.json")
	opts := loadOpts(ts.URL)
	opts.MinCoalesce = int64(opts.HerdK / 2)
	opts.Max5xx = 0
	if err := runServeLoad(opts, out); err != nil {
		t.Fatalf("load run failed: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep ServeLoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Herd.Builds != 1 || !rep.Herd.Identical || rep.Herd.OK != opts.HerdK {
		t.Fatalf("herd phase: %+v", rep.Herd)
	}
	if rep.Herd.Deduped < opts.MinCoalesce {
		t.Fatalf("herd deduplicated %d < %d", rep.Herd.Deduped, opts.MinCoalesce)
	}
	if rep.DegradedProbe.Status != 200 || !rep.DegradedProbe.Degraded {
		t.Fatalf("degraded probe: %+v", rep.DegradedProbe)
	}
	if rep.Load.Client.Count != int64(opts.Requests) {
		t.Fatalf("client histogram saw %d of %d requests", rep.Load.Client.Count, opts.Requests)
	}
	if rep.Load.Statuses["200"] != opts.Requests {
		t.Fatalf("mixed load statuses: %v", rep.Load.Statuses)
	}
	if rep.Unexpected5xx != 0 {
		t.Fatalf("unexpected 5xx on a healthy server: %d", rep.Unexpected5xx)
	}
	if len(rep.GateFailures) != 0 {
		t.Fatalf("gate failures on a healthy server: %v", rep.GateFailures)
	}
}

// TestServeLoadGatesOnInjectedFaults: with an http fault plan the 5xx
// budget gate trips (exit path errSLO), injected errors are excluded from
// Unexpected5xx, and -load-require-faults is satisfiable.
func TestServeLoadGatesOnInjectedFaults(t *testing.T) {
	plan, err := faultinject.Parse("http:503:1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	out := filepath.Join(t.TempDir(), "load.json")
	opts := loadOpts(ts.URL)
	opts.HerdK = 0 // herd can't coalesce when every request 503s
	opts.Requests = 30
	opts.RequireFaults = true
	opts.Max5xx = 0
	err = runServeLoad(opts, out)
	data, rerr := os.ReadFile(out)
	if rerr != nil {
		t.Fatalf("report not written on gate failure: %v", rerr)
	}
	var rep ServeLoadReport
	if uerr := json.Unmarshal(data, &rep); uerr != nil {
		t.Fatal(uerr)
	}
	if rep.FaultsFired == 0 {
		t.Fatalf("fault plan never fired: %+v", rep.Server)
	}
	if rep.Unexpected5xx != 0 {
		t.Fatalf("injected 503s counted as unexpected: %d", rep.Unexpected5xx)
	}
	// The degraded probe can itself be hit by an injected 503, which is a
	// legitimate gate failure; require-faults must NOT be among failures.
	for _, g := range rep.GateFailures {
		if g == "fault plan configured but never fired" {
			t.Fatalf("require-faults gate tripped despite %d ledger entries", rep.FaultsFired)
		}
	}
	if err != nil && !errors.Is(err, errSLO) {
		t.Fatalf("gate failure mapped to wrong error: %v", err)
	}
}

// TestServeLoadInProcess: with no -serve-url the generator boots its own
// server and still produces a full report.
func TestServeLoadInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	opts := loadOpts("")
	opts.HerdK = 8
	opts.Requests = 10
	if err := runServeLoad(opts, out); err != nil {
		t.Fatalf("in-process load run failed: %v", err)
	}
	var rep ServeLoadReport
	data, _ := os.ReadFile(out)
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.InProcess || rep.Herd.Builds != 1 {
		t.Fatalf("in-process report: in_process=%v herd=%+v", rep.InProcess, rep.Herd)
	}
}
