package main

import (
	"strings"
	"testing"
)

func report(results ...Result) *Report {
	return &Report{Date: "2026-01-01", Go: "go-test", Bench: ".", Results: results}
}

func TestCompareReportsDetectsSyntheticRegression(t *testing.T) {
	baseline := report(
		Result{Name: "BenchmarkA", NsPerOp: 100},
		Result{Name: "BenchmarkB", NsPerOp: 1000},
	)
	// B injected 40% slower: must regress at the 15% threshold.
	current := report(
		Result{Name: "BenchmarkA", NsPerOp: 104},
		Result{Name: "BenchmarkB", NsPerOp: 1400},
	)
	deltas, regressions := compareReports(baseline, current, 15)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	if len(regressions) != 1 || regressions[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkB", regressions)
	}
	if got := regressions[0].Pct; got < 39.9 || got > 40.1 {
		t.Errorf("BenchmarkB pct = %.2f, want ~40", got)
	}
	// Worst delta sorts first.
	if deltas[0].Name != "BenchmarkB" {
		t.Errorf("deltas not sorted worst-first: %+v", deltas)
	}
}

func TestCompareReportsImprovementAndNoise(t *testing.T) {
	baseline := report(
		Result{Name: "BenchmarkFast", NsPerOp: 200},
		Result{Name: "BenchmarkSteady", NsPerOp: 500},
	)
	current := report(
		Result{Name: "BenchmarkFast", NsPerOp: 50},    // 4x speedup
		Result{Name: "BenchmarkSteady", NsPerOp: 555}, // +11%: within threshold
	)
	_, regressions := compareReports(baseline, current, 15)
	if len(regressions) != 0 {
		t.Fatalf("improvement/noise flagged as regression: %+v", regressions)
	}
}

func TestCompareReportsDisjointNames(t *testing.T) {
	baseline := report(Result{Name: "BenchmarkGone", NsPerOp: 10})
	current := report(Result{Name: "BenchmarkNew", NsPerOp: 999999})
	deltas, regressions := compareReports(baseline, current, 15)
	if len(regressions) != 0 {
		t.Fatalf("renamed benchmarks must not regress: %+v", regressions)
	}
	var onlyOld, onlyNew bool
	for _, d := range deltas {
		if d.Name == "BenchmarkGone" && d.OnlyOld {
			onlyOld = true
		}
		if d.Name == "BenchmarkNew" && d.OnlyNew {
			onlyNew = true
		}
	}
	if !onlyOld || !onlyNew {
		t.Fatalf("one-sided benchmarks not carried through: %+v", deltas)
	}
}

func TestPrintDeltasMarksRegressions(t *testing.T) {
	baseline := report(Result{Name: "BenchmarkSlow", NsPerOp: 100})
	current := report(Result{Name: "BenchmarkSlow", NsPerOp: 200})
	deltas, _ := compareReports(baseline, current, 15)
	var b strings.Builder
	printDeltas(&b, deltas, 15)
	if !strings.Contains(b.String(), "!") || !strings.Contains(b.String(), "+100.0%") {
		t.Fatalf("regression line not marked:\n%s", b.String())
	}
}
