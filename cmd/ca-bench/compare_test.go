package main

import (
	"strings"
	"testing"
)

func report(results ...Result) *Report {
	return &Report{Date: "2026-01-01", Go: "go-test", Bench: ".", Results: results}
}

func TestCompareReportsDetectsSyntheticRegression(t *testing.T) {
	baseline := report(
		Result{Name: "BenchmarkA", NsPerOp: 100},
		Result{Name: "BenchmarkB", NsPerOp: 1000},
	)
	// B injected 40% slower: must regress at the 15% threshold.
	current := report(
		Result{Name: "BenchmarkA", NsPerOp: 104},
		Result{Name: "BenchmarkB", NsPerOp: 1400},
	)
	deltas, regressions := compareReports(baseline, current, 15, -1)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	if len(regressions) != 1 || regressions[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkB", regressions)
	}
	if got := regressions[0].Pct; got < 39.9 || got > 40.1 {
		t.Errorf("BenchmarkB pct = %.2f, want ~40", got)
	}
	// Worst delta sorts first.
	if deltas[0].Name != "BenchmarkB" {
		t.Errorf("deltas not sorted worst-first: %+v", deltas)
	}
}

func TestCompareReportsImprovementAndNoise(t *testing.T) {
	baseline := report(
		Result{Name: "BenchmarkFast", NsPerOp: 200},
		Result{Name: "BenchmarkSteady", NsPerOp: 500},
	)
	current := report(
		Result{Name: "BenchmarkFast", NsPerOp: 50},    // 4x speedup
		Result{Name: "BenchmarkSteady", NsPerOp: 555}, // +11%: within threshold
	)
	_, regressions := compareReports(baseline, current, 15, -1)
	if len(regressions) != 0 {
		t.Fatalf("improvement/noise flagged as regression: %+v", regressions)
	}
}

func TestCompareReportsDisjointNames(t *testing.T) {
	baseline := report(Result{Name: "BenchmarkGone", NsPerOp: 10})
	current := report(Result{Name: "BenchmarkNew", NsPerOp: 999999})
	deltas, regressions := compareReports(baseline, current, 15, -1)
	if len(regressions) != 0 {
		t.Fatalf("renamed benchmarks must not regress: %+v", regressions)
	}
	var onlyOld, onlyNew bool
	for _, d := range deltas {
		if d.Name == "BenchmarkGone" && d.OnlyOld {
			onlyOld = true
		}
		if d.Name == "BenchmarkNew" && d.OnlyNew {
			onlyNew = true
		}
	}
	if !onlyOld || !onlyNew {
		t.Fatalf("one-sided benchmarks not carried through: %+v", deltas)
	}
}

func TestPrintDeltasMarksRegressions(t *testing.T) {
	baseline := report(Result{Name: "BenchmarkSlow", NsPerOp: 100})
	current := report(Result{Name: "BenchmarkSlow", NsPerOp: 200})
	deltas, _ := compareReports(baseline, current, 15, -1)
	var b strings.Builder
	printDeltas(&b, deltas, 15, -1)
	if !strings.Contains(b.String(), "!") || !strings.Contains(b.String(), "+100.0%") {
		t.Fatalf("regression line not marked:\n%s", b.String())
	}
}

func TestCompareReportsDiffsAllocationMetrics(t *testing.T) {
	baseline := report(
		Result{Name: "BenchmarkMem", NsPerOp: 100, BytesPerOp: 4096, AllocsPerOp: 10},
	)
	current := report(
		Result{Name: "BenchmarkMem", NsPerOp: 105, BytesPerOp: 1024, AllocsPerOp: 40},
	)
	deltas, regressions := compareReports(baseline, current, 15, -1)
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1", len(deltas))
	}
	d := deltas[0]
	if d.OldBytes != 4096 || d.NewBytes != 1024 || d.OldAllocs != 10 || d.NewAllocs != 40 {
		t.Fatalf("allocation metrics not carried: %+v", d)
	}
	if d.BytesPct > -74.9 || d.BytesPct < -75.1 {
		t.Errorf("BytesPct = %.2f, want -75", d.BytesPct)
	}
	if d.AllocsPct < 299.9 || d.AllocsPct > 300.1 {
		t.Errorf("AllocsPct = %.2f, want +300", d.AllocsPct)
	}
	// A 4x allocs/op regression alone must NOT trip the ns/op threshold.
	if len(regressions) != 0 {
		t.Fatalf("allocation-only change flagged as regression: %+v", regressions)
	}
	var b strings.Builder
	printDeltas(&b, deltas, 15, -1)
	out := b.String()
	for _, want := range []string{"4096 -> 1024 B/op", "10 -> 40 allocs/op", "-75.0%", "+300.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed comparison missing %q:\n%s", want, out)
		}
	}
}

func TestPrintDeltasOmitsAllocsWhenAbsent(t *testing.T) {
	baseline := report(Result{Name: "BenchmarkPlain", NsPerOp: 100})
	current := report(Result{Name: "BenchmarkPlain", NsPerOp: 110})
	deltas, _ := compareReports(baseline, current, 15, -1)
	var b strings.Builder
	printDeltas(&b, deltas, 15, -1)
	if strings.Contains(b.String(), "B/op") || strings.Contains(b.String(), "allocs/op") {
		t.Fatalf("allocation columns printed for a timing-only report:\n%s", b.String())
	}
}

func TestCompareReportsCarriesAllocsOnOneSidedRows(t *testing.T) {
	baseline := report(
		Result{Name: "BenchmarkGone", NsPerOp: 10, BytesPerOp: 512, AllocsPerOp: 3},
	)
	current := report(
		Result{Name: "BenchmarkNew", NsPerOp: 20, BytesPerOp: 2048, AllocsPerOp: 7},
	)
	deltas, _ := compareReports(baseline, current, 15, -1)
	for _, d := range deltas {
		switch {
		case d.OnlyNew:
			if d.NewBytes != 2048 || d.NewAllocs != 7 {
				t.Errorf("new row dropped allocation metrics: %+v", d)
			}
		case d.OnlyOld:
			if d.OldBytes != 512 || d.OldAllocs != 3 {
				t.Errorf("removed row dropped allocation metrics: %+v", d)
			}
		}
	}
	var b strings.Builder
	printDeltas(&b, deltas, 15, -1)
	out := b.String()
	for _, want := range []string{"2048 B/op", "7 allocs/op", "512 B/op", "3 allocs/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("one-sided row missing %q:\n%s", want, out)
		}
	}
	// Timing-only one-sided rows still omit the allocation columns.
	deltas, _ = compareReports(report(), report(Result{Name: "BenchmarkPlainNew", NsPerOp: 5}), 15, -1)
	b.Reset()
	printDeltas(&b, deltas, 15, -1)
	if strings.Contains(b.String(), "B/op") {
		t.Errorf("timing-only new row printed allocation columns:\n%s", b.String())
	}
}

func TestCompareReportsMemoryGate(t *testing.T) {
	baseline := report(
		Result{Name: "BenchmarkHeap", NsPerOp: 100, BytesPerOp: 1000,
			Extra: map[string]float64{"peak-B": 1 << 20}},
		Result{Name: "BenchmarkSteadyHeap", NsPerOp: 100, BytesPerOp: 1000,
			Extra: map[string]float64{"peak-B": 1 << 20}},
	)
	// Heap doubles its high-water mark at unchanged timing; SteadyHeap only
	// drifts 5% on both memory axes.
	current := report(
		Result{Name: "BenchmarkHeap", NsPerOp: 100, BytesPerOp: 1000,
			Extra: map[string]float64{"peak-B": 2 << 20}},
		Result{Name: "BenchmarkSteadyHeap", NsPerOp: 100, BytesPerOp: 1050,
			Extra: map[string]float64{"peak-B": 1.05 * (1 << 20)}},
	)
	// Gate off (negative mem threshold): a pure memory regression passes.
	if _, regressions := compareReports(baseline, current, 15, -1); len(regressions) != 0 {
		t.Fatalf("memory regression gated with -mem-threshold off: %+v", regressions)
	}
	// Gate on: only the doubled high-water mark regresses.
	deltas, regressions := compareReports(baseline, current, 15, 25)
	if len(regressions) != 1 || regressions[0].Name != "BenchmarkHeap" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkHeap", regressions)
	}
	if got := regressions[0].PeakPct; got < 99.9 || got > 100.1 {
		t.Errorf("PeakPct = %.2f, want ~100", got)
	}
	var b strings.Builder
	printDeltas(&b, deltas, 15, 25)
	out := b.String()
	if !strings.Contains(out, "peak-B") {
		t.Fatalf("peak-B column missing:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "BenchmarkHeap ") && !strings.HasPrefix(line, "!") {
			t.Errorf("memory regression not marked: %q", line)
		}
	}
}

func TestCompareReportsBytesPerOpGate(t *testing.T) {
	baseline := report(Result{Name: "BenchmarkAlloc", NsPerOp: 100, BytesPerOp: 1000})
	current := report(Result{Name: "BenchmarkAlloc", NsPerOp: 100, BytesPerOp: 1500})
	if _, regressions := compareReports(baseline, current, 15, 25); len(regressions) != 1 {
		t.Fatalf("+50%% B/op not gated at -mem-threshold 25: %+v", regressions)
	}
	if _, regressions := compareReports(baseline, current, 15, 75); len(regressions) != 0 {
		t.Fatalf("+50%% B/op gated at -mem-threshold 75: %+v", regressions)
	}
}

func TestPeakMetricOnOneSidedRows(t *testing.T) {
	deltas, regressions := compareReports(
		report(),
		report(Result{Name: "BenchmarkNewPeak", NsPerOp: 5,
			Extra: map[string]float64{"peak-B": 4096}}),
		15, 10)
	if len(regressions) != 0 {
		t.Fatalf("new benchmark with peak-B counted as regression: %+v", regressions)
	}
	var b strings.Builder
	printDeltas(&b, deltas, 15, 10)
	if !strings.Contains(b.String(), "4096 peak-B") {
		t.Fatalf("one-sided peak-B not printed:\n%s", b.String())
	}
}
