package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Delta is one benchmark's baseline-vs-current comparison. Pct is the
// relative ns/op change in percent (positive = slower); allocation metrics
// (B/op, allocs/op, present when the runs used -benchmem) and the peak-B
// high-water heap metric (present when the benchmark called
// reportPeakHeap) are diffed and reported alongside. ns/op always gates;
// B/op and peak-B gate only when a -mem-threshold was given. Benchmarks
// present in only one report are carried through with OnlyOld/OnlyNew set
// and never count as regressions — a renamed benchmark should not fail
// CI, a slower one should.
type Delta struct {
	Name      string  `json:"name"`
	OldNs     float64 `json:"old_ns_per_op,omitempty"`
	NewNs     float64 `json:"new_ns_per_op,omitempty"`
	Pct       float64 `json:"pct,omitempty"`
	OldBytes  int64   `json:"old_bytes_per_op,omitempty"`
	NewBytes  int64   `json:"new_bytes_per_op,omitempty"`
	BytesPct  float64 `json:"bytes_pct,omitempty"`
	OldAllocs int64   `json:"old_allocs_per_op,omitempty"`
	NewAllocs int64   `json:"new_allocs_per_op,omitempty"`
	AllocsPct float64 `json:"allocs_pct,omitempty"`
	OldPeakB  float64 `json:"old_peak_b,omitempty"`
	NewPeakB  float64 `json:"new_peak_b,omitempty"`
	PeakPct   float64 `json:"peak_pct,omitempty"`
	OnlyOld   bool    `json:"only_old,omitempty"`
	OnlyNew   bool    `json:"only_new,omitempty"`
}

// Regressed reports whether the delta exceeds the slowdown threshold (in
// percent) on a benchmark present in both reports.
func (d Delta) Regressed(thresholdPct float64) bool {
	return !d.OnlyOld && !d.OnlyNew && d.Pct > thresholdPct
}

// RegressedMem reports whether the delta exceeds the memory threshold (in
// percent) on either gated memory axis: allocated B/op or the peak-B
// high-water heap. A negative threshold disables the gate — the default,
// so existing comparisons keep their timing-only contract.
func (d Delta) RegressedMem(memThresholdPct float64) bool {
	if memThresholdPct < 0 || d.OnlyOld || d.OnlyNew {
		return false
	}
	return (d.OldBytes > 0 && d.BytesPct > memThresholdPct) ||
		(d.OldPeakB > 0 && d.PeakPct > memThresholdPct)
}

// peakB extracts the high-water heap metric a benchmark reported via
// reportPeakHeap, or 0 when the run recorded none.
func peakB(r Result) float64 {
	return r.Extra["peak-B"]
}

// compareReports pairs the two reports' results by benchmark name and
// returns every delta (sorted worst-first) plus the subset regressing past
// thresholdPct on ns/op or past memThresholdPct on B/op / peak-B (the
// memory gate is off when memThresholdPct is negative).
func compareReports(baseline, current *Report, thresholdPct, memThresholdPct float64) (deltas, regressions []Delta) {
	old := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		old[r.Name] = r
	}
	seen := make(map[string]bool, len(current.Results))
	for _, r := range current.Results {
		seen[r.Name] = true
		o, ok := old[r.Name]
		if !ok {
			deltas = append(deltas, Delta{
				Name: r.Name, NewNs: r.NsPerOp,
				NewBytes: r.BytesPerOp, NewAllocs: r.AllocsPerOp,
				NewPeakB: peakB(r),
				OnlyNew:  true,
			})
			continue
		}
		d := Delta{
			Name:  r.Name,
			OldNs: o.NsPerOp, NewNs: r.NsPerOp,
			OldBytes: o.BytesPerOp, NewBytes: r.BytesPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: r.AllocsPerOp,
			OldPeakB: peakB(o), NewPeakB: peakB(r),
		}
		if o.NsPerOp > 0 {
			d.Pct = (r.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		if o.BytesPerOp > 0 {
			d.BytesPct = float64(r.BytesPerOp-o.BytesPerOp) / float64(o.BytesPerOp) * 100
		}
		if o.AllocsPerOp > 0 {
			d.AllocsPct = float64(r.AllocsPerOp-o.AllocsPerOp) / float64(o.AllocsPerOp) * 100
		}
		if d.OldPeakB > 0 {
			d.PeakPct = (d.NewPeakB - d.OldPeakB) / d.OldPeakB * 100
		}
		deltas = append(deltas, d)
	}
	for _, r := range baseline.Results {
		if !seen[r.Name] {
			deltas = append(deltas, Delta{
				Name: r.Name, OldNs: r.NsPerOp,
				OldBytes: r.BytesPerOp, OldAllocs: r.AllocsPerOp,
				OldPeakB: peakB(r),
				OnlyOld:  true,
			})
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Pct != deltas[j].Pct {
			return deltas[i].Pct > deltas[j].Pct
		}
		return deltas[i].Name < deltas[j].Name
	})
	for _, d := range deltas {
		if d.Regressed(thresholdPct) || d.RegressedMem(memThresholdPct) {
			regressions = append(regressions, d)
		}
	}
	return deltas, regressions
}

// loadReport reads a ca-bench JSON report.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// printDeltas writes the per-benchmark comparison, worst regression first.
// Rows carry the allocation and peak-heap deltas (when either report
// recorded them) after the timing delta; the leading mark flags a row
// regressing on any gated axis (timing always, memory when a
// -mem-threshold was given).
func printDeltas(w io.Writer, deltas []Delta, thresholdPct, memThresholdPct float64) {
	for _, d := range deltas {
		switch {
		case d.OnlyNew:
			fmt.Fprintf(w, "  new      %-60s %12.1f ns/op%s%s\n",
				d.Name, d.NewNs, soloAlloc(d.NewBytes, d.NewAllocs), soloPeak(d.NewPeakB))
		case d.OnlyOld:
			fmt.Fprintf(w, "  removed  %-60s %12.1f ns/op%s%s\n",
				d.Name, d.OldNs, soloAlloc(d.OldBytes, d.OldAllocs), soloPeak(d.OldPeakB))
		default:
			mark := " "
			if d.Regressed(thresholdPct) || d.RegressedMem(memThresholdPct) {
				mark = "!"
			}
			fmt.Fprintf(w, "%s %+7.1f%%  %-60s %12.1f -> %12.1f ns/op%s%s\n",
				mark, d.Pct, d.Name, d.OldNs, d.NewNs, allocDelta(d), peakDelta(d))
		}
	}
}

// allocDelta formats the B/op and allocs/op portions of a comparison row,
// or "" when neither report recorded allocation metrics.
func allocDelta(d Delta) string {
	if d.OldBytes == 0 && d.NewBytes == 0 && d.OldAllocs == 0 && d.NewAllocs == 0 {
		return ""
	}
	return fmt.Sprintf("  %+7.1f%% %d -> %d B/op  %+7.1f%% %d -> %d allocs/op",
		d.BytesPct, d.OldBytes, d.NewBytes, d.AllocsPct, d.OldAllocs, d.NewAllocs)
}

// peakDelta formats the peak-B portion of a comparison row, or "" when
// neither run reported a high-water heap.
func peakDelta(d Delta) string {
	if d.OldPeakB == 0 && d.NewPeakB == 0 {
		return ""
	}
	return fmt.Sprintf("  %+7.1f%% %.0f -> %.0f peak-B", d.PeakPct, d.OldPeakB, d.NewPeakB)
}

// soloAlloc formats the single-sided allocation metrics of a new/removed
// row, or "" when that run recorded none.
func soloAlloc(bytes, allocs int64) string {
	if bytes == 0 && allocs == 0 {
		return ""
	}
	return fmt.Sprintf("  %d B/op  %d allocs/op", bytes, allocs)
}

// soloPeak is soloAlloc's peak-B counterpart for new/removed rows.
func soloPeak(peak float64) string {
	if peak == 0 {
		return ""
	}
	return fmt.Sprintf("  %.0f peak-B", peak)
}
