package main

import (
	"regexp"
	"strconv"
	"strings"
)

// Report is the JSON document ca-bench emits.
type Report struct {
	Date    string   `json:"date"`
	Go      string   `json:"go"`
	Bench   string   `json:"bench"`
	Results []Result `json:"results"`
}

// Result is one parsed benchmark line. Custom metrics emitted with
// b.ReportMetric (e.g. the POR ablation's "schedules/op") land in Extra
// keyed by their unit; they are carried through to the JSON so baselines
// record them, but only ns/op ever gates a comparison.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches standard `go test -bench` output, e.g.
//
//	BenchmarkE05_Theorem1-8   100  11045 ns/op  2048 B/op  3 allocs/op
//	BenchmarkAblation_StepWorkers/workers=4-8  500  2113 ns/op  4096.00 MB/s
//
// The name always starts with "Benchmark"; the trailing -N GOMAXPROCS
// suffix is stripped. Metric fields after ns/op are optional and may
// appear in any order.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

var metricField = regexp.MustCompile(`([\d.]+(?:[eE][+-]?\d+)?) ([A-Za-z][^\s]*)`)

// parseBenchLines extracts every benchmark result from raw `go test -bench`
// output, skipping goos/goarch/cpu headers, PASS/ok trailers and any
// interleaved test output.
func parseBenchLines(raw string) []Result {
	var out []Result
	for _, line := range strings.Split(raw, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, f := range metricField.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				continue
			}
			switch f[2] {
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			case "MB/s":
				r.MBPerSec = v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[f[2]] = v
			}
		}
		out = append(out, r)
	}
	return out
}
