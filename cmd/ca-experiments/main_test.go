package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepSingleExperiment runs one cheap experiment through the full
// supervised sweep path, including a fault plan that panics on its index.
func TestSweepSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, "E01", false, "", false, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "## E01") {
		t.Fatalf("missing section header:\n%s", b.String())
	}

	// E01 is experiment index 0: panic:0 must be absorbed by the
	// supervisor and the section printed exactly once.
	b.Reset()
	if err := run(context.Background(), &b, "E01", false, "", false, "panic:0"); err != nil {
		t.Fatalf("faulted sweep failed: %v", err)
	}
	if n := strings.Count(b.String(), "## E01"); n != 1 {
		t.Fatalf("section printed %d times, want 1:\n%s", n, b.String())
	}
}

func TestSweepUnknownIDErrors(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, "E99", false, "", false, ""); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
	if err := run(context.Background(), &b, "E01", false, "", false, "explode:1"); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

// TestSweepCheckpointSkipsCompleted interrupts a sweep after the first
// experiment (via a pre-cancelled context on the second pass) and checks
// that -resume skips the completed section.
func TestSweepCheckpointSkipsCompleted(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "exp.ckpt.gz")

	var b strings.Builder
	if err := run(context.Background(), &b, "E01", false, ckpt, false, ""); err != nil {
		t.Fatal(err)
	}

	// Resume: E01 is marked done, so it must be skipped, not re-run.
	b.Reset()
	if err := run(context.Background(), &b, "E01", false, ckpt, true, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "skipped: completed in checkpoint") {
		t.Fatalf("resumed sweep re-ran a completed experiment:\n%s", b.String())
	}

	// A cancelled context flushes the checkpoint and reports the
	// cancellation instead of running anything.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b.Reset()
	if err := run(ctx, &b, "E02", false, ckpt, true, ""); err != context.Canceled {
		t.Fatalf("cancelled sweep returned %v", err)
	}
}
