package main

import (
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"time"

	"repro/internal/automaton"
	"repro/internal/bootstrap"
	"repro/internal/config"
	"repro/internal/debruijn"
	"repro/internal/density"
	"repro/internal/interleave"
	"repro/internal/phasespace"
	"repro/internal/render"
	"repro/internal/rule"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/threshnet"
	"repro/internal/transfer"
	"repro/internal/update"
	"repro/internal/verify"
	"repro/internal/wolfram"
)

// E19: sweep all 256 elementary rules — where exactly does Theorem 1's
// hypothesis bite? (The paper's §4 asks at what rule complexity sequential
// computations "catch up" with concurrent ones; here is the complete answer
// for radius 1.)
func e19(w io.Writer, md bool) error {
	c := wolfram.TakeCensus(7)
	t := render.NewTable("rule class (3-input, ring n=7)", "count", "rules / note")
	t.AddRow("symmetric (totalistic)", len(c.Symmetric), "output depends only on #1s")
	t.AddRow("monotone", len(c.Monotone), "Dedekind number M(3) = 20")
	t.AddRow("monotone ∧ symmetric = thresholds", len(c.Thresholds), fmt.Sprint(c.Thresholds))
	t.AddRow("GF(2)-additive", len(c.Additive), fmt.Sprint(c.Additive))
	t.AddRow("number-conserving", len(c.NumberConservingRules), fmt.Sprint(c.NumberConservingRules))
	t.AddRow("sequentially acyclic", len(c.SequentiallyAcyclic), "cycle-free SCA phase space")
	t.AddRow("monotone BUT sequentially cyclic", len(c.MonotoneButCyclic), fmt.Sprint(c.MonotoneButCyclic))
	t.AddRow("acyclic but NOT threshold", len(c.AcyclicButNotThreshold), fmt.Sprint(c.AcyclicButNotThreshold))
	if err := emit(t, w, md); err != nil {
		return err
	}
	// Theorem 1 inclusion: every threshold is acyclic.
	thresholdsAcyclic := true
	for _, th := range c.Thresholds {
		found := false
		for _, ac := range c.SequentiallyAcyclic {
			if ac == th {
				found = true
			}
		}
		thresholdsAcyclic = thresholdsAcyclic && found
	}
	witness := len(c.MonotoneButCyclic) > 0
	ok := thresholdsAcyclic && witness &&
		len(c.Thresholds) == 5 && len(c.Monotone) == 20 && len(c.Symmetric) == 16
	_, err := fmt.Fprintf(w, "\nTheorem 1 quantifies over monotone ∧ symmetric rules; the census shows both hypotheses are needed:\nmonotone alone fails (e.g. the shift rule 170 cycles sequentially), symmetric alone fails (parity 150 cycles).\nEvery threshold rule is sequentially acyclic → %s\n", verdict(ok))
	return err
}

// E20: block-sequential updating — the interpolation knob between the
// paper's two disciplines, and where the two-cycles come back.
func e20(w io.Writer, md bool) error {
	n := 12
	a := majRing(n, 1)
	t := render.NewTable("block structure", "blocks independent sets", "max period over all configs")
	type rowSpec struct {
		name   string
		blocks [][]int
	}
	rows := []rowSpec{
		{"singletons (= sequential sweep)", automaton.ContiguousBlocks(n, 1)},
		{"contiguous pairs", automaton.ContiguousBlocks(n, 2)},
		{"contiguous triples", automaton.ContiguousBlocks(n, 3)},
		{"contiguous halves", automaton.ContiguousBlocks(n, 6)},
		{"single block (= parallel CA)", automaton.ContiguousBlocks(n, n)},
		{"odd-even (red-black) sweep", automaton.ParityBlocks(n)},
	}
	indepAlwaysFP := true
	parallelCycles := false
	seqFP := true
	for _, r := range rows {
		indep := a.BlocksIndependent(r.blocks)
		p := a.BlockMaxPeriod(r.blocks)
		if indep && p != 1 {
			indepAlwaysFP = false
		}
		if len(r.blocks) == 1 && p >= 2 {
			parallelCycles = true
		}
		if r.name == "singletons (= sequential sweep)" && p != 1 {
			seqFP = false
		}
		t.AddRow(r.name, indep, p)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	ok := indepAlwaysFP && parallelCycles && seqFP
	_, err := fmt.Fprintf(w, "\nextension of the paper's dichotomy: independent-set blocks provably behave like sequential sweeps\n(no cycles — the Lyapunov argument localizes), and on this ring ANY sequential phase at all kills the\noscillation: only the fully parallel single block retains the Lemma 1(i) two-cycle → %s\n", verdict(ok))
	return err
}

// E21: 2-D threshold CA at scale — Corollary 1's bipartite two-cycles and
// Proposition 1's convergence on large tori via the packed kernel.
func e21(w io.Writer, md bool) error {
	t := render.NewTable("torus", "cells", "workload", "transient", "period", "verdict")
	allOK := true
	rng := rand.New(rand.NewSource(21))
	for _, spec := range []struct{ w, h int }{{64, 64}, {256, 256}, {512, 256}} {
		n := spec.w * spec.h
		// Checkerboard bipartition: immediate 2-cycle.
		sp := space.Torus(spec.w, spec.h)
		part, bip := space.Bipartition(sp)
		if !bip {
			return fmt.Errorf("torus %dx%d not bipartite", spec.w, spec.h)
		}
		s := sim.NewMajorityTorus(spec.w, spec.h, config.FromParts(part))
		tr, p, ok := s.FindPeriod(64)
		rowOK := ok && p == 2 && tr == 0
		allOK = allOK && rowOK
		t.AddRow(fmt.Sprintf("%dx%d", spec.w, spec.h), n, "checkerboard", tr, p, verdict(rowOK))
		// Random start: settles into period ≤ 2.
		s2 := sim.NewMajorityTorus(spec.w, spec.h, config.Random(rng, n, 0.5))
		tr2, p2, ok2 := s2.FindPeriod(4 * (spec.w + spec.h))
		rowOK2 := ok2 && p2 <= 2
		allOK = allOK && rowOK2
		t.AddRow(fmt.Sprintf("%dx%d", spec.w, spec.h), n, "random p=0.5", tr2, p2, verdict(rowOK2))
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nCorollary 1 (2-D) and Proposition 1 hold at scale on the packed torus kernel → %s\n", verdict(allOK))
	return err
}

// E22: the weighted generalization (paper refs [7],[8]): arbitrary
// symmetric integer weights keep both halves of the dichotomy, and Hebbian
// storage turns the convergence theorem into associative recall.
func e22(w io.Writer, md bool) error {
	t := render.NewTable("network", "trials", "sequential energy increases", "parallel period ≤ 2", "notes")
	allOK := true

	// Random weighted networks: strict sequential descent, parallel period ≤ 2.
	rises, periodOK := 0, true
	trials := 10
	for seed := int64(0); seed < int64(trials); seed++ {
		nw := threshnet.RandomNetwork(20, 0.4, 3, 4, seed)
		rng := rand.New(rand.NewSource(seed + 50))
		x := config.Random(rng, 20, 0.5)
		prev := nw.Energy4(x)
		for step := 0; step < 2000; step++ {
			if nw.UpdateNode(x, rng.Intn(20)) {
				cur := nw.Energy4(x)
				if cur >= prev {
					rises++
				}
				prev = cur
			}
		}
		// Parallel: iterate until x^{t+2} = x^t.
		a := config.Random(rng, 20, 0.5)
		b := config.New(20)
		nw.Step(b, a)
		settled := false
		for step := 0; step < 400; step++ {
			z := config.New(20)
			nw.Step(z, b)
			if z.Equal(a) {
				settled = true
				break
			}
			a, b = b, z
		}
		periodOK = periodOK && settled
	}
	netOK := rises == 0 && periodOK
	allOK = allOK && netOK
	t.AddRow("random symmetric weights (n=20, w∈[−3,3])", trials, rises, periodOK, "Theorem 1 + Prop 1 generalize")

	// Hopfield associative recall.
	rng := rand.New(rand.NewSource(99))
	n := 96
	h := threshnet.NewHopfield(n)
	patterns := make([]threshnet.Pattern, 4)
	for i := range patterns {
		patterns[i] = threshnet.RandomPattern(rng, n)
		h.Store(patterns[i])
	}
	perfect := 0
	for i, p := range patterns {
		probe := p.Corrupt(rng, n/10)
		got, ok := h.Recall(probe, int64(i), 200)
		if ok && got.Hamming(p) == 0 {
			perfect++
		}
	}
	recallOK := perfect == len(patterns)
	allOK = allOK && recallOK
	t.AddRow(fmt.Sprintf("Hopfield n=%d, 4 patterns, 10%% corruption", n),
		len(patterns), 0, true, fmt.Sprintf("%d/%d perfect recalls", perfect, len(patterns)))
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nweighted symmetric threshold networks inherit the paper's dichotomy; Hebbian storage turns\nguaranteed sequential convergence into associative memory → %s\n", verdict(allOK))
	return err
}

// E23: density classification — what the paper's "simple" threshold CA
// cannot compute, and what a carefully engineered non-totalistic rule can.
func e23(w io.Writer, md bool) error {
	t := render.NewTable("rule", "radius", "ring n", "trials", "correct", "wrong", "unsettled", "accuracy")
	n, trials := 149, 80
	gkl := density.Benchmark("GKL", density.GKL(), 3, n, trials, 7, 600)
	maj1 := density.Benchmark("majority r=1", rule.Majority(1), 1, n, trials, 7, 600)
	maj3 := density.Benchmark("majority r=3", rule.Majority(3), 3, n, trials, 7, 600)
	for _, r := range []struct {
		res    density.Result
		radius int
	}{{gkl, 3}, {maj1, 1}, {maj3, 3}} {
		t.AddRow(r.res.Rule, r.radius, r.res.N, r.res.Trials, r.res.Correct, r.res.Wrong,
			r.res.Unsettled, fmt.Sprintf("%.2f", r.res.Accuracy()))
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	ok := gkl.Accuracy() >= 0.7 && maj1.Accuracy() <= 0.3 && maj3.Accuracy() <= 0.3 &&
		gkl.Accuracy() > maj1.Accuracy()
	_, err := fmt.Fprintf(w, "\nthe threshold CA the paper fully classifies (Prop 1: freeze or 2-cycle) cannot perform global\ndensity classification — they freeze into striped fixed points — while the non-totalistic GKL rule,\noutside Theorem 1's class, classifies ~80%% of instances → %s\n", verdict(ok))
	return err
}

// E24: bounded asynchrony (§4) — influence propagates at most r nodes per
// step; additive rules saturate the bound, damped rules fall below it.
func e24(w io.Writer, md bool) error {
	t := render.NewTable("rule", "radius r", "background", "measured cone speed", "bound r respected")
	allOK := true
	n := 64
	rng := rand.New(rand.NewSource(24))
	cases := []struct {
		name    string
		r       int
		rl      rule.Rule
		bg      string
		wantMax bool // expect speed == r exactly
	}{
		{"xor (additive)", 1, rule.XOR{}, "quiescent", true},
		{"xor (additive)", 2, rule.XOR{}, "quiescent", true},
		{"xor (additive)", 3, rule.XOR{}, "quiescent", true},
		{"majority", 1, rule.Majority(1), "quiescent", false},
		{"majority", 2, rule.Majority(2), "quiescent", false},
		{"eca-30 (chaotic)", 1, rule.Elementary(30), "random", false},
		{"eca-110", 1, rule.Elementary(110), "random", false},
	}
	for _, c := range cases {
		a := automaton.MustNew(space.Ring(n, c.r), c.rl)
		var x0 config.Config
		if c.bg == "quiescent" {
			x0 = config.New(n)
		} else {
			x0 = config.Random(rng, n, 0.5)
		}
		steps := (n/2 - 1) / c.r
		if steps > 12 {
			steps = 12
		}
		trace := a.LightCone(x0, n/2, steps)
		v := automaton.ConeSpeed(trace)
		within := v <= float64(c.r)+1e-9
		allOK = allOK && within
		if c.wantMax {
			allOK = allOK && v == float64(c.r)
		}
		t.AddRow(c.name, c.r, c.bg, fmt.Sprintf("%.2f", v), within)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\n§4: classical CA are models of bounded asynchrony — influence travels ≤ r nodes per step.\nadditive rules attain the bound exactly; threshold rules damp perturbations → %s\n", verdict(allOK))
	return err
}

// E25: irreversible threshold growth (bootstrap percolation) — where the
// interleaving semantics that fails for majority CA holds perfectly, plus
// the classic 2-D percolation threshold sweep.
func e25(w io.Writer, md bool) error {
	// Confluence check: every discipline reaches the same closure.
	sp := space.Ring(18, 1)
	a, err := bootstrap.Automaton(sp, 2)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(25))
	confluent := true
	orderSensitiveMajority := false
	maj := automaton.MustNew(sp, rule.Majority(1))
	for trial := 0; trial < 20; trial++ {
		seeds := config.Random(rng, 18, 0.3)
		want := bootstrap.Closure(sp, 2, seeds)
		res := a.Converge(seeds.Clone(), 200)
		if res.Period != 1 || !res.Final.Equal(want) {
			confluent = false
		}
		for seq := 0; seq < 4; seq++ {
			c := seeds.Clone()
			a.RunSequential(c, update.NewRandomFair(18, int64(trial*10+seq)), 18*18*4)
			if !c.Equal(want) {
				confluent = false
			}
		}
		// Majority control: different orders, different outcomes (somewhere).
		x0 := config.Random(rng, 18, 0.5)
		var first config.Config
		for seq := 0; seq < 4; seq++ {
			c := x0.Clone()
			sched := update.NewRandomFair(18, int64(trial*7+seq))
			for i := 0; i < 18*18*6 && !maj.FixedPoint(c); i++ {
				maj.UpdateNode(c, sched.Next())
			}
			if seq == 0 {
				first = c
			} else if !c.Equal(first) {
				orderSensitiveMajority = true
			}
		}
	}

	t := render.NewTable("initial density p", "trials", "P(full activation)", "mean final density")
	torus := space.Torus(24, 24)
	ps := []float64{0.02, 0.05, 0.08, 0.12, 0.16, 0.24, 0.32}
	points := bootstrap.PercolationSweep(torus, 2, ps, 60, 77)
	monotone := true
	for i, pt := range points {
		if i > 0 && pt.SpanFraction+0.15 < points[i-1].SpanFraction {
			monotone = false
		}
		t.AddRow(fmt.Sprintf("%.2f", pt.P), pt.Trials,
			fmt.Sprintf("%.2f", pt.SpanFraction), fmt.Sprintf("%.2f", pt.MeanFinal))
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	ok := confluent && orderSensitiveMajority && monotone &&
		points[0].SpanFraction < 0.3 && points[len(points)-1].SpanFraction > 0.9
	_, err = fmt.Fprintf(w, "\nirreversible growth: parallel = every sequential order = queue closure (confluent: %v), while\nreversible majority outcomes depend on the order (%v); the 2-D sweep shows the classic sharp\npercolation threshold on the 24×24 torus → %s\n",
		confluent, orderSensitiveMajority, verdict(ok))
	return err
}

// E26: computation theory of CA (paper ref [18], Sutner): surjectivity and
// injectivity on the infinite line, decided via de Bruijn graphs, and the
// Moore–Myhill bridge to Garden-of-Eden configurations on rings.
func e26(w io.Writer, md bool) error {
	surjective, injective := 0, 0
	for code := 0; code < 256; code++ {
		g := debruijn.MustNew(rule.Elementary(uint8(code)), 1)
		s, i := g.Classify()
		if s {
			surjective++
		}
		if i {
			injective++
		}
	}
	t := render.NewTable("quantity", "measured", "literature")
	t.AddRow("surjective elementary CA", surjective, 30)
	t.AddRow("injective (reversible) elementary CA", injective, 6)
	// Spot rows for the paper's rules.
	for _, spec := range []struct {
		name string
		code uint8
	}{{"majority (232)", 232}, {"parity (150)", 150}, {"shift (170)", 170}} {
		g := debruijn.MustNew(rule.Elementary(spec.code), 1)
		s, i := g.Classify()
		t.AddRow(spec.name+" surjective/injective", fmt.Sprintf("%v/%v", s, i), "-")
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	// Moore–Myhill: the non-surjective majority has ring Gardens of Eden.
	a := majRing(10, 1)
	goe := len(buildPar(a).GardenOfEden())
	ok := surjective == 30 && injective == 6 && goe > 0
	_, err := fmt.Fprintf(w, "\nde Bruijn subset/pair automata reproduce the classical enumerations exactly; majority is\nnon-surjective and accordingly shows %d Garden-of-Eden states on the 10-ring (Moore–Myhill) → %s\n",
		goe, verdict(ok))
	return err
}

// E27: the analytic census engine beyond enumeration range. Fixed points,
// temporal 2-cycles, and Garden-of-Eden counts are spectral quantities —
// traces of powers of window-transition transfer matrices — so after a
// one-time recurrence derivation per rule, exact counts at n = 10^6 cost
// O(log n) big-integer work. The first table gives exact counts for the
// full MAJ-3 threshold panel at n ∈ {10^3, 10^4, 10^6}; the second
// measures where the analytic path overtakes exhaustive enumeration.
func e27(w io.Writer, md bool) error {
	abbrev := func(x *big.Int) string {
		s := x.String()
		if len(s) <= 20 {
			return s
		}
		return fmt.Sprintf("%s… (%d digits)", s[:8], len(s))
	}
	t := render.NewTable("rule", "n", "fixed points", "2-cycles", "garden-of-eden", "orders fp/pair/goe", "census time")
	allOK := true
	for k := 0; k <= 4; k++ {
		rl := rule.Threshold{K: k}
		for _, n := range []uint64{1000, 10000, 1000000} {
			start := time.Now()
			c, err := phasespace.AnalyticCensusAt(rl, 1, n)
			if err != nil {
				return err
			}
			el := time.Since(start).Round(time.Millisecond)
			// Partition invariant: GoE + with-preimage = 2^n exactly.
			sum := new(big.Int).Add(c.GardenOfEden, c.WithPreimage)
			allOK = allOK && sum.Cmp(c.Configs) == 0 && el < time.Second
			t.AddRow(rl.Name(), n, abbrev(c.FixedPoints), abbrev(c.TwoCycles), abbrev(c.GardenOfEden),
				fmt.Sprintf("%d/%d/%d", c.Orders[0], c.Orders[1], c.Orders[2]), el)
		}
	}
	if err := emit(t, w, md); err != nil {
		return err
	}

	// Crossover: enumeration is O(2^n); the analytic query is O(log n)
	// after a derivation shared across all n. Report both and the first
	// ring size where enumeration is slower.
	ct := render.NewTable("n", "enumeration (full 2^n census)", "analytic query", "agree")
	crossover := 0
	crossOK := true
	for n := 12; n <= 20; n += 2 {
		a := majRing(n, 1)
		start := time.Now()
		ec := buildPar(a).TakeCensus()
		enumT := time.Since(start)
		start = time.Now()
		ac, err := phasespace.AnalyticCensusAt(rule.Majority(1), 1, uint64(n))
		if err != nil {
			return err
		}
		anaT := time.Since(start)
		agree := ac.FixedPoints.Int64() == int64(ec.FixedPoints) &&
			ac.TwoCycles.Int64() == int64(ec.ProperCycles) &&
			ac.GardenOfEden.Uint64() == ec.GardenOfEden
		crossOK = crossOK && agree
		if crossover == 0 && enumT > anaT {
			crossover = n
		}
		ct.AddRow(n, enumT.Round(time.Microsecond), anaT.Round(time.Microsecond), agree)
	}
	if err := emit(ct, w, md); err != nil {
		return err
	}
	_ = transfer.MaxEngineRadius // engines cap at this radius; panel above is r=1
	_, err := fmt.Fprintf(w, "\nexact counts at n = 10^6 in under a second per rule; enumeration overtaken by n = %d.\npartition invariant GoE + with-preimage = 2^n holds exactly at every n → %s\n",
		crossover, verdict(allOK && crossOK && crossover > 0))
	return err
}

// E28: micro-op scheduling under partial-order reduction. Three legs:
// the POR prune factor against brute-force enumeration where both run,
// the S5 witness pipeline (find / shrink / certify) on even MAJORITY
// rings far past the brute-force wall, and the word of the minimal
// shrunk schedule itself.
func e28(w io.Writer, md bool) error {
	allOK := true

	// Leg 1: prune factors where the brute force can still enumerate.
	// Brute counts every (2k)!/2^k fetch/commit interleaving; the sleep-set
	// search visits one schedule per Mazurkiewicz trace.
	pt := render.NewTable("ring", "brute schedules", "POR schedules", "prune factor", "outcome sets")
	for _, n := range []int{4, 5, 6} {
		a := majRing(n, 1)
		start := config.Alternating(n, 0)
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		brute, err := interleave.MicroOutcomes(a, start, nodes)
		if err != nil {
			return err
		}
		res, err := interleave.PORSearch(a, start, nodes, interleave.POROptions{})
		if err != nil {
			return err
		}
		total := 0
		for _, c := range brute {
			total += c
		}
		same := len(brute) == len(res.Outcomes)
		for v := range brute {
			if _, ok := res.Outcomes[v]; !ok {
				same = false
			}
		}
		factor := float64(total) / float64(res.Stats.Schedules)
		allOK = allOK && same && (n < 6 || factor >= 100)
		pt.AddRow(fmt.Sprintf("n=%d", n), total, res.Stats.Schedules,
			fmt.Sprintf("%.0f×", factor), map[bool]string{true: "identical", false: "DIVERGE"}[same])
	}
	if err := emit(pt, w, md); err != nil {
		return err
	}

	// Leg 2: the S5 pipeline past the brute wall — targeted witness
	// search, ddmin shrink, exhaustive atomic certification.
	wt := render.NewTable("ring", "interleavings (exact)", "witness ops", "shrunk word", "atomic reach |set|", "atomic hits F(x)")
	var lastShrunk []int
	for n := 6; n <= 16; n += 2 {
		witness, shrunk, cex := verify.MicroPORWitness(n)
		if cex != nil {
			return fmt.Errorf("E28: S5 witness pipeline failed at n=%d: %s", n, cex)
		}
		a := majRing(n, 1)
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		progs, err := interleave.Programs(a, nodes, interleave.FetchCommit)
		if err != nil {
			return err
		}
		atomic, err := interleave.AtomicReachable(a, config.Alternating(n, 0), nodes)
		if err != nil {
			return err
		}
		count := interleave.ScheduleCount(progs)
		cs := count.String()
		if len(cs) > 14 {
			cs = fmt.Sprintf("%s… (%d digits)", cs[:6], len(cs))
		}
		wt.AddRow(fmt.Sprintf("n=%d", n), cs, len(witness),
			fmt.Sprintf("%d of %d", len(shrunk), len(witness)), len(atomic), false)
		lastShrunk = shrunk
	}
	if err := emit(wt, w, md); err != nil {
		return err
	}

	_, err := fmt.Fprintf(w, "\nminimal shrunk schedule word at n=16 (program indices; the canonical completion runs the rest in program order):\n  %v\npaper (§5 / Lemma 1): the parallel 2-cycle step needs %d of 16 fetches scheduled before any store —\none atomic update anywhere breaks it, so no whole-update order ever reaches F(x).\nmeasured → %s\n", lastShrunk, len(lastShrunk), verdict(allOK))
	return err
}
