// Command ca-experiments regenerates every reproduced result of the paper
// (the per-experiment index of DESIGN.md, E01–E18) and prints one section
// per experiment, with the tables recorded in EXPERIMENTS.md.
//
//	ca-experiments            # run everything
//	ca-experiments -only E04  # run one experiment
//	ca-experiments -md        # markdown tables (for EXPERIMENTS.md)
//
// The sweep runs under the fault-tolerant campaign runtime: each
// experiment executes supervised (a panic is retried, then re-run
// degraded, and only then reported as a failure), its output is buffered
// so retries never print half a section, SIGINT/SIGTERM cancel between
// experiments and flush a final checkpoint, and -resume skips the
// experiments a previous interrupted sweep already completed:
//
//	ca-experiments -checkpoint exp.ckpt          # interruptible sweep
//	ca-experiments -checkpoint exp.ckpt -resume  # continue, skip done
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/faultinject"
	"repro/internal/runtime"
)

type experiment struct {
	id    string
	title string
	run   func(w io.Writer, md bool) error
}

var experiments = []experiment{
	{"E01", "Figure 1(a): parallel 2-node XOR phase space", e01},
	{"E02", "Figure 1(b): sequential 2-node XOR phase space", e02},
	{"E03", "Lemma 1(i): parallel MAJORITY r=1 two-cycles", e03},
	{"E04", "Lemma 1(ii): sequential MAJORITY r=1 acyclicity", e04},
	{"E05", "Theorem 1: all monotone symmetric r=1 rules, sequential acyclicity", e05},
	{"E06", "Lemma 2: radius-2 MAJORITY dichotomy", e06},
	{"E07", "Corollary 1: two-cycles for every radius", e07},
	{"E08", "Proposition 1: convergence to FPs or two-cycles", e08},
	{"E09", "Corollary 1 (general): bipartite cellular spaces", e09},
	{"E10", "§1.1: interleaving granularity on the register VM", e10},
	{"E11", "§5: micro-op interleavings recover the parallel step", e11},
	{"E12", "§4: asynchronous CA subsume parallel CA and SCA", e12},
	{"E13", "ref [19]: phase-space census of parallel MAJORITY", e13},
	{"E14", "footnote 2: fairness bound vs convergence time", e14},
	{"E15", "§4: non-homogeneous threshold CA", e15},
	{"E16", "§4 / refs [3-6]: SDS update-order equivalence and Garden-of-Eden", e16},
	{"E17", "energy theory: Lyapunov descent (mechanism behind Theorem 1/Prop 1)", e17},
	{"E18", "HPC scaling: packed vs scalar synchronous stepping", e18},
	{"E19", "extension: sequential acyclicity across all 256 elementary rules", e19},
	{"E20", "extension: block-sequential interpolation between parallel and sequential", e20},
	{"E21", "extension: 2-D threshold CA at scale (packed torus kernel)", e21},
	{"E22", "extension: weighted threshold networks and Hopfield associative recall", e22},
	{"E23", "extension: density classification — GKL vs threshold majority", e23},
	{"E24", "extension: bounded asynchrony — light cones and propagation speed", e24},
	{"E25", "extension: irreversible threshold growth (bootstrap percolation) — confluence", e25},
	{"E26", "extension: surjectivity and reversibility via de Bruijn graphs (ref [18])", e26},
	{"E27", "analytic census: transfer-matrix exact counts beyond enumeration range", e27},
	{"E28", "micro-op scheduling: POR prune factors and the shrunk S5 witness", e28},
	{"E29", "graph ensembles: random-regular/power-law censuses and the hyperoctahedral quotient", e29},
}

func main() {
	var (
		only       = flag.String("only", "", "run only the experiment with this id (e.g. E04)")
		md         = flag.Bool("md", false, "emit markdown tables")
		workers    = flag.Int("workers", 0, "phase-space builder worker count (0 = GOMAXPROCS)")
		checkpoint = flag.String("checkpoint", "", "sweep checkpoint path (.gz compresses); flushed after every experiment")
		resume     = flag.Bool("resume", false, "skip experiments completed by a previous checkpointed sweep")
		faults     = flag.String("faults", "", "deterministic fault plan to inject per experiment index, e.g. panic:3 (debug)")
		analytic   = flag.Bool("analytic", false, "route ST census quantities (FPs, 2-cycles, GoE) through the transfer-matrix engine and cross-check them against enumeration where both apply")
		graphs     = flag.Bool("graphs", false, "run only the graph-ensemble census campaign (shorthand for -only E29)")
	)
	prof := cli.NewProfile()
	flag.Parse()
	if *graphs && *only == "" {
		*only = "E29"
	}
	cli.Exit2("ca-experiments", cli.First(
		cli.NonNegative("-workers", *workers),
		cli.Writable("-checkpoint", *checkpoint),
	))
	stopProf := prof.MustStart("ca-experiments")
	buildWorkers = *workers
	analyticMode = *analytic
	// Second SIGINT/SIGTERM force-exits but still flushes the profiles.
	ctx, stop := cli.ForcedSignalContext(context.Background(), stopProf)
	defer stop()
	err := run(ctx, os.Stdout, *only, *md, *checkpoint, *resume, *faults)
	stopProf() // explicit: the os.Exit paths below skip defers
	switch {
	case cli.Interrupted(err):
		fmt.Fprintln(os.Stderr, "ca-experiments: interrupted; checkpoint flushed")
		os.Exit(cli.InterruptExitCode)
	case err != nil:
		fmt.Fprintln(os.Stderr, "ca-experiments:", err)
		os.Exit(1)
	}
}

// sweepKind tags experiment-sweep checkpoints.
const sweepKind = "experiments/sweep"

func sweepFingerprint(md bool) string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.id
	}
	return runtime.Fingerprint(sweepKind, fmt.Sprint(md), strings.Join(ids, ","))
}

func run(ctx context.Context, w io.Writer, only string, md bool, checkpoint string, resume bool, faults string) error {
	plan, err := faultinject.Parse(faults)
	if err != nil {
		return err
	}
	super := runtime.Options{}
	if plan != nil {
		super.Hooks = plan
	}

	ck := runtime.NewCheckpoint(sweepKind, sweepFingerprint(md), len(experiments), 0)
	if checkpoint != "" && resume {
		loaded, err := runtime.LoadCheckpoint(checkpoint)
		switch {
		case err == nil:
			if verr := loaded.Validate(sweepKind, sweepFingerprint(md), len(experiments), 0); verr != nil {
				return fmt.Errorf("resume %s: %w", checkpoint, verr)
			}
			ck = loaded
		case errors.Is(err, os.ErrNotExist):
			// Fresh sweep.
		default:
			return err
		}
	}
	flush := func() error {
		if checkpoint == "" {
			return nil
		}
		return ck.Save(checkpoint)
	}

	ran := 0
	for i, e := range experiments {
		if only != "" && !strings.EqualFold(only, e.id) {
			continue
		}
		if err := ctx.Err(); err != nil {
			if ferr := flush(); ferr != nil {
				return ferr
			}
			return err
		}
		if ck.IsDone(i) {
			fmt.Fprintf(w, "## %s — %s\n\n(skipped: completed in checkpoint %s)\n\n", e.id, e.title, checkpoint)
			ran++
			continue
		}
		// Buffer the section so a retried experiment never prints a torn
		// table; only a successful attempt's output is emitted.
		var section bytes.Buffer
		err := runtime.Do(ctx, super, i, func() error {
			section.Reset()
			return e.run(&section, md)
		})
		if err != nil {
			if ctx.Err() != nil {
				if ferr := flush(); ferr != nil {
					return ferr
				}
				return ctx.Err()
			}
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintf(w, "## %s — %s\n\n", e.id, e.title)
		if _, err := w.Write(section.Bytes()); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ck.MarkDone(i)
		if err := flush(); err != nil {
			return err
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", only)
	}
	return nil
}
