// Command ca-experiments regenerates every reproduced result of the paper
// (the per-experiment index of DESIGN.md, E01–E18) and prints one section
// per experiment, with the tables recorded in EXPERIMENTS.md.
//
//	ca-experiments            # run everything
//	ca-experiments -only E04  # run one experiment
//	ca-experiments -md        # markdown tables (for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func(w io.Writer, md bool) error
}

var experiments = []experiment{
	{"E01", "Figure 1(a): parallel 2-node XOR phase space", e01},
	{"E02", "Figure 1(b): sequential 2-node XOR phase space", e02},
	{"E03", "Lemma 1(i): parallel MAJORITY r=1 two-cycles", e03},
	{"E04", "Lemma 1(ii): sequential MAJORITY r=1 acyclicity", e04},
	{"E05", "Theorem 1: all monotone symmetric r=1 rules, sequential acyclicity", e05},
	{"E06", "Lemma 2: radius-2 MAJORITY dichotomy", e06},
	{"E07", "Corollary 1: two-cycles for every radius", e07},
	{"E08", "Proposition 1: convergence to FPs or two-cycles", e08},
	{"E09", "Corollary 1 (general): bipartite cellular spaces", e09},
	{"E10", "§1.1: interleaving granularity on the register VM", e10},
	{"E11", "§5: micro-op interleavings recover the parallel step", e11},
	{"E12", "§4: asynchronous CA subsume parallel CA and SCA", e12},
	{"E13", "ref [19]: phase-space census of parallel MAJORITY", e13},
	{"E14", "footnote 2: fairness bound vs convergence time", e14},
	{"E15", "§4: non-homogeneous threshold CA", e15},
	{"E16", "§4 / refs [3-6]: SDS update-order equivalence and Garden-of-Eden", e16},
	{"E17", "energy theory: Lyapunov descent (mechanism behind Theorem 1/Prop 1)", e17},
	{"E18", "HPC scaling: packed vs scalar synchronous stepping", e18},
	{"E19", "extension: sequential acyclicity across all 256 elementary rules", e19},
	{"E20", "extension: block-sequential interpolation between parallel and sequential", e20},
	{"E21", "extension: 2-D threshold CA at scale (packed torus kernel)", e21},
	{"E22", "extension: weighted threshold networks and Hopfield associative recall", e22},
	{"E23", "extension: density classification — GKL vs threshold majority", e23},
	{"E24", "extension: bounded asynchrony — light cones and propagation speed", e24},
	{"E25", "extension: irreversible threshold growth (bootstrap percolation) — confluence", e25},
	{"E26", "extension: surjectivity and reversibility via de Bruijn graphs (ref [18])", e26},
}

func main() {
	var (
		only    = flag.String("only", "", "run only the experiment with this id (e.g. E04)")
		md      = flag.Bool("md", false, "emit markdown tables")
		workers = flag.Int("workers", 0, "phase-space builder worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()
	buildWorkers = *workers
	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("## %s — %s\n\n", e.id, e.title)
		if err := e.run(os.Stdout, *md); err != nil {
			fmt.Fprintf(os.Stderr, "ca-experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ca-experiments: no experiment matches %q\n", *only)
		os.Exit(1)
	}
}
