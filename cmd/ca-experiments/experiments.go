package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/async"
	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/interleave"
	"repro/internal/phasespace"
	"repro/internal/render"
	"repro/internal/rule"
	"repro/internal/sds"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/update"
)

func emit(t *render.Table, w io.Writer, md bool) error {
	if md {
		return t.Markdown(w)
	}
	return t.Write(w)
}

func verdict(ok bool) string {
	if ok {
		return "REPRODUCED"
	}
	return "FAILED"
}

// buildWorkers is the phase-space builder worker count every experiment
// shares; main wires the -workers flag into it (0 = GOMAXPROCS).
var buildWorkers int

// analyticMode routes ST census quantities (fixed points, temporal
// 2-cycles, Garden-of-Eden counts) through the transfer-matrix engine
// where a census query asks only for those, cross-checking against the
// enumerated values; main wires the -analytic flag into it.
var analyticMode bool

func buildPar(a *automaton.Automaton) *phasespace.Parallel {
	return phasespace.BuildParallelWorkers(a, buildWorkers)
}

func buildSeq(a *automaton.Automaton) *phasespace.Sequential {
	return phasespace.BuildSequentialWorkers(a, buildWorkers)
}

func xorPair() *automaton.Automaton {
	return automaton.MustNew(space.CompleteGraph(2), rule.XOR{})
}

func majRing(n, r int) *automaton.Automaton {
	return automaton.MustNew(space.Ring(n, r), rule.Majority(r))
}

func cfg(x uint64, n int) string { return config.FromIndex(x, n).String() }

// E01: Figure 1(a).
func e01(w io.Writer, md bool) error {
	p := buildPar(xorPair())
	t := render.NewTable("config", "F(config)", "class", "in-degree")
	deg := p.InDegrees()
	for x := uint64(0); x < 4; x++ {
		class := "transient"
		if p.IsFixedPoint(x) {
			class = "fixed point (sink)"
		}
		t.AddRow(cfg(x, 2), cfg(p.Successor(x), 2), class, deg[x])
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	c := p.TakeCensus()
	ok := c.FixedPoints == 1 && c.ProperCycles == 0 && c.GardenOfEden == 2 && c.MaxTransientLen == 2
	_, err := fmt.Fprintf(w, "\npaper: 00 is the global sink, reached in ≤2 steps; no proper cycles.\nmeasured: sink=00, max transient %d, proper cycles %d → %s\n",
		c.MaxTransientLen, c.ProperCycles, verdict(ok))
	return err
}

// E02: Figure 1(b).
func e02(w io.Writer, md bool) error {
	s := buildSeq(xorPair())
	t := render.NewTable("config", "update node 1", "update node 2", "class")
	for x := uint64(0); x < 4; x++ {
		class := ""
		switch {
		case s.IsFixedPoint(x):
			class = "fixed point (unreachable)"
		case s.IsPseudoFixedPoint(x):
			class = "pseudo-fixed point"
		}
		t.AddRow(cfg(x, 2), cfg(s.Successor(x, 0), 2), cfg(s.Successor(x, 1), 2), class)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, acyclic := s.Acyclic()
	tc := s.TwoCycles()
	unreach := s.Unreachable()
	reach00 := false
	for _, from := range []uint64{1, 2, 3} {
		if s.ReachableFrom(from)[0] {
			reach00 = true
		}
	}
	ok := !acyclic && len(tc) == 2 && len(s.PseudoFixedPoints()) == 2 &&
		len(unreach) == 1 && unreach[0] == 0 && !reach00
	_, err := fmt.Fprintf(w, "\npaper: 00 an unreachable FP; 01,10 pseudo-FPs; two temporal 2-cycles; 00 never reachable.\nmeasured: pseudo-FPs %d, 2-cycles %d, unreachable {00}=%v, 00-reachable-from-others=%v → %s\n",
		len(s.PseudoFixedPoints()), len(tc), len(unreach) == 1 && unreach[0] == 0, reach00, verdict(ok))
	return err
}

// E03: Lemma 1(i).
func e03(w io.Writer, md bool) error {
	t := render.NewTable("n", "proper cycles", "all period 2", "alternating pair present")
	allOK := true
	for n := 4; n <= 16; n += 2 {
		p := buildPar(majRing(n, 1))
		pcs := p.ProperCycles()
		period2 := true
		hasAlt := false
		alt0, alt1 := config.Alternating(n, 0).Index(), config.Alternating(n, 1).Index()
		for _, c := range pcs {
			if len(c) != 2 {
				period2 = false
			}
			if (c[0] == alt0 && c[1] == alt1) || (c[0] == alt1 && c[1] == alt0) {
				hasAlt = true
			}
		}
		ok := len(pcs) > 0 && period2 && hasAlt
		allOK = allOK && ok
		t.AddRow(n, len(pcs), period2, hasAlt)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\npaper: even rings have the (01)^{n/2} ↔ (10)^{n/2} temporal 2-cycle.\nmeasured: present at every even n tested → %s\n", verdict(allOK))
	return err
}

// E04: Lemma 1(ii).
func e04(w io.Writer, md bool) error {
	t := render.NewTable("n", "union-graph acyclic", "per-permutation max period (n ≤ 6)")
	allOK := true
	for n := 3; n <= 14; n++ {
		s := buildSeq(majRing(n, 1))
		_, acyclic := s.Acyclic()
		perPerm := "-"
		if n <= 6 {
			maxPeriod := 1
			a := majRing(n, 1)
			update.Permutations(n, func(perm []int) {
				sys := sds.MustNew(a, perm)
				table := sys.FunctionTable()
				// functional-graph cycles of the sweep map
				for x := range table {
					// follow 2^n steps to land on the cycle, then measure
					v := uint32(x)
					for k := 0; k < len(table); k++ {
						v = table[v]
					}
					start := v
					period := 0
					for {
						v = table[v]
						period++
						if v == start {
							break
						}
					}
					if period > maxPeriod {
						maxPeriod = period
					}
				}
			})
			perPerm = fmt.Sprint(maxPeriod)
			allOK = allOK && maxPeriod == 1
		}
		allOK = allOK && acyclic
		t.AddRow(n, acyclic, perPerm)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	revisitable, local := automaton.LocalCaseAnalysis(rule.Majority(1))
	allOK = allOK && local
	_, err := fmt.Fprintf(w, "\npaper: no sequential update order yields a proper cycle (local case analysis over 1-neighborhoods).\nmeasured: union digraph acyclic for all n; every sweep permutation's map has only period-1 attractors;\nmechanized local case analysis: revisitable windows %v → %s\n",
		revisitable, verdict(allOK))
	return err
}

// E05: Theorem 1.
func e05(w io.Writer, md bool) error {
	t := render.NewTable("rule", "n=4", "n=6", "n=8", "n=10", "n=12")
	allOK := true
	for _, th := range rule.AllThresholds(3) {
		row := []interface{}{th.Name()}
		for _, n := range []int{4, 6, 8, 10, 12} {
			a := automaton.MustNew(space.Ring(n, 1), th)
			_, acyclic := buildSeq(a).Acyclic()
			allOK = allOK && acyclic
			row = append(row, acyclic)
		}
		t.AddRow(row...)
	}
	// Contrast: the non-monotone symmetric rule cycles.
	xa := automaton.MustNew(space.Ring(6, 1), rule.XOR{})
	_, xorAcyclic := buildSeq(xa).Acyclic()
	allOK = allOK && !xorAcyclic
	t.AddRow("xor (contrast)", "-", xorAcyclic, "-", "-", "-")
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\npaper: every monotone symmetric Boolean SCA (k-of-3 thresholds) has a cycle-free phase space; monotonicity is essential.\nmeasured: all thresholds acyclic, XOR not → %s\n", verdict(allOK))
	return err
}

// E06: Lemma 2.
func e06(w io.Writer, md bool) error {
	t := render.NewTable("n", "parallel proper cycles (r=2)", "sequential acyclic (r=2)")
	allOK := true
	for _, n := range []int{8, 10, 12, 14} {
		a := majRing(n, 2)
		pcs := buildPar(a).ProperCycles()
		_, acyclic := buildSeq(a).Acyclic()
		allOK = allOK && acyclic
		if n%4 == 0 {
			allOK = allOK && len(pcs) > 0
		}
		t.AddRow(n, len(pcs), acyclic)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\npaper: the radius-2 dichotomy matches radius 1 — parallel cycles exist, sequential never cycle.\nmeasured → %s\n", verdict(allOK))
	return err
}

// E07: Corollary 1.
func e07(w io.Writer, md bool) error {
	t := render.NewTable("radius r", "ring n", "block 2-cycle 0^r1^r…", "second 2-cycle 0101… (odd r)")
	allOK := true
	for r := 1; r <= 4; r++ {
		n := 2 * r * 8
		a := majRing(n, r)
		blockOK := a.IsTwoCycle(config.AlternatingBlocks(n, r, 0))
		allOK = allOK && blockOK
		second := "-"
		if r%2 == 1 {
			altOK := a.IsTwoCycle(config.Alternating(n, 0))
			second = fmt.Sprint(altOK)
			allOK = allOK && altOK
		}
		t.AddRow(r, n, blockOK, second)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\npaper: for every r the block configuration yields a 2-cycle; odd r admits a second, distinct 2-cycle.\nmeasured → %s\n", verdict(allOK))
	return err
}

// E08: Proposition 1.
func e08(w io.Writer, md bool) error {
	t := render.NewTable("workload", "orbits", "fixed point", "2-cycle", "period>2", "unresolved")
	allOK := true
	// Exhaustive small rings, several thresholds.
	for _, spec := range []struct{ n, k int }{{12, 1}, {12, 2}, {12, 3}, {16, 2}} {
		a := automaton.MustNew(space.Ring(spec.n, 1), rule.Threshold{K: spec.k})
		tally := stats.NewOutcomeTally()
		config.Space(spec.n, func(_ uint64, c config.Config) {
			res := a.Converge(c.Clone(), 4*spec.n+32)
			tally.Record(res.Period, res.Transient)
		})
		allOK = allOK && tally.Longer == 0 && tally.Unresolved == 0
		t.AddRow(fmt.Sprintf("exhaustive ring n=%d k=%d", spec.n, spec.k),
			tally.Total(), tally.FixedPoints, tally.TwoCycles, tally.Longer, tally.Unresolved)
	}
	// Sampled large rings via the packed simulator.
	rng := rand.New(rand.NewSource(2024))
	for _, n := range []int{1 << 10, 1 << 14, 1 << 17} {
		tally := stats.NewOutcomeTally()
		for trial := 0; trial < 50; trial++ {
			s := sim.NewMajorityRing(n, 1, config.Random(rng, n, 0.5))
			transient, period, ok := s.FindPeriod(4 * n)
			if !ok {
				period = 0
			}
			tally.Record(period, transient)
		}
		allOK = allOK && tally.Longer == 0 && tally.Unresolved == 0
		t.AddRow(fmt.Sprintf("sampled ring n=%d majority", n),
			tally.Total(), tally.FixedPoints, tally.TwoCycles, tally.Longer, tally.Unresolved)
	}
	// Bipartite higher-dimensional spaces.
	for _, sp := range []space.Space{space.Torus(4, 4), space.Hypercube(4)} {
		deg, _ := space.Regular(sp)
		a := automaton.MustNew(sp, rule.StrictMajorityOf(deg))
		tally := stats.NewOutcomeTally()
		for trial := 0; trial < 500; trial++ {
			c := config.Random(rng, sp.N(), 0.5)
			res := a.Converge(c, 200)
			tally.Record(res.Period, res.Transient)
		}
		allOK = allOK && tally.Longer == 0 && tally.Unresolved == 0
		t.AddRow("sampled "+sp.Name()+" majority",
			tally.Total(), tally.FixedPoints, tally.TwoCycles, tally.Longer, tally.Unresolved)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\npaper (Goles–Olivos): ∀x ∃t: F^{t+2}(x) = F^t(x) — only FPs and 2-cycles.\nmeasured: zero orbits with period > 2 across %s → %s\n",
		"exhaustive and sampled workloads", verdict(allOK))
	return err
}

// E09: bipartite spaces.
func e09(w io.Writer, md bool) error {
	t := render.NewTable("space", "bipartite", "bipartition config is 2-cycle")
	allOK := true
	spaces := []space.Space{
		space.Ring(12, 1), space.Torus(4, 6), space.Torus(6, 6),
		space.Hypercube(3), space.Hypercube(6), space.Circulant(16, 1, 3, 5),
	}
	for _, sp := range spaces {
		part, bip := space.Bipartition(sp)
		row := []interface{}{sp.Name(), bip}
		if bip {
			deg, _ := space.Regular(sp)
			a := automaton.MustNew(sp, rule.StrictMajorityOf(deg))
			cyc := a.IsTwoCycle(config.FromParts(part))
			allOK = allOK && cyc
			row = append(row, cyc)
		} else {
			allOK = false
			row = append(row, "-")
		}
		t.AddRow(row...)
	}
	// Negative control: odd rings are not bipartite.
	_, bip := space.Bipartition(space.Ring(9, 1))
	allOK = allOK && !bip
	t.AddRow(space.Ring(9, 1).Name()+" (control)", bip, "-")
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\npaper: any bipartite cellular space gives threshold CA a temporal 2-cycle (color classes alternate).\nmeasured → %s\n", verdict(allOK))
	return err
}

// E10: §1.1 register VM.
func e10(w io.Writer, md bool) error {
	progs := []interleave.Program{interleave.IncrementProgram(1), interleave.IncrementProgram(2)}
	atomic := interleave.AtomicOrders(0, progs)
	machine := interleave.Interleavings(0, progs)
	parallel := interleave.SimultaneousWrites(0, progs)
	t := render.NewTable("granularity", "schedules", "distinct outcomes", "outcome set")
	total := func(m map[int64]int) int {
		s := 0
		for _, c := range m {
			s += c
		}
		return s
	}
	t.AddRow("atomic x+=k statements", total(atomic), len(atomic), fmt.Sprint(interleave.Values(atomic)))
	t.AddRow("LOAD/ADD/STORE instructions", total(machine), len(machine), fmt.Sprint(interleave.Values(machine)))
	t.AddRow("simultaneous (parallel write)", total(parallel), len(parallel), fmt.Sprint(interleave.Values(parallel)))
	if err := emit(t, w, md); err != nil {
		return err
	}
	ok := len(atomic) == 1 && len(machine) == 3 && len(parallel) == 2
	for v := range parallel {
		if _, reachable := machine[v]; !reachable {
			ok = false
		}
		if _, reachable := atomic[v]; reachable {
			ok = false
		}
	}
	_, err := fmt.Fprintf(w, "\npaper: sequentially one always gets 3; in parallel 1 or 2; machine-level interleavings recover them.\nmeasured: atomic {3}; machine {1,2,3} ⊇ parallel {1,2} → %s\n", verdict(ok))
	return err
}

// E11: §5 micro-op recovery.
func e11(w io.Writer, md bool) error {
	t := render.NewTable("automaton", "start", "micro interleavings", "micro recovers F(x)", "atomic orders", "atomic recovers F(x)")
	allOK := true
	cases := []struct {
		name  string
		a     *automaton.Automaton
		start config.Config
	}{
		{"2-node XOR", xorPair(), config.MustParse("11")},
		{"majority ring n=4", majRing(4, 1), config.Alternating(4, 0)},
		{"majority ring n=5", majRing(5, 1), config.Alternating(5, 0)},
		{"majority ring n=6", majRing(6, 1), config.Alternating(6, 0)},
	}
	for _, c := range cases {
		rep, err := interleave.CheckRecovery(c.a, c.start)
		if err != nil {
			return err
		}
		allOK = allOK && rep.MicroReaches && !rep.AtomicReaches
		t.AddRow(c.name, c.start.String(), rep.MicroSchedules, rep.MicroReaches, rep.AtomicSchedules, rep.AtomicReaches)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\npaper (§5): node updates are not atomic — fetch/store interleavings capture the parallel step, whole-update interleavings cannot.\nmeasured → %s\n", verdict(allOK))
	return err
}

// E12: §4 ACA subsumption.
func e12(w io.Writer, md bool) error {
	n := 10
	a := majRing(n, 1)
	rng := rand.New(rand.NewSource(5))
	t := render.NewTable("claim", "trials", "agree/expected", "verdict")

	// ACA(lockstep, latency ½) ≡ parallel CA.
	agree := 0
	trials := 20
	for trial := 0; trial < trials; trial++ {
		x0 := config.Random(rng, n, 0.5)
		rounds := 1 + rng.Intn(6)
		got := async.RunLockstep(a, x0, rounds)
		want := x0.Clone()
		tmp := config.New(n)
		for k := 0; k < rounds; k++ {
			a.Step(tmp, want)
			want, tmp = tmp, want
		}
		if got.Equal(want) {
			agree++
		}
	}
	lockOK := agree == trials
	t.AddRow("ACA(lockstep, λ=½) ≡ parallel CA", trials, fmt.Sprintf("%d/%d", agree, trials), verdict(lockOK))

	// ACA(serial, latency 0) ≡ SCA.
	agree = 0
	for trial := 0; trial < trials; trial++ {
		x0 := config.Random(rng, n, 0.5)
		order := make([]int, 3*n)
		for i := range order {
			order[i] = rng.Intn(n)
		}
		got := async.RunSerial(a, x0, order)
		want := x0.Clone()
		a.RunSequential(want, update.MustSequence(n, order), len(order))
		if got.Equal(want) {
			agree++
		}
	}
	serialOK := agree == trials
	t.AddRow("ACA(serial, λ=0) ≡ SCA", trials, fmt.Sprintf("%d/%d", agree, trials), verdict(serialOK))

	// ACA can revisit configurations (impossible for any SCA on thresholds).
	e := async.NewEngine(a, config.Alternating(n, 1), async.ConstantLatency(0.5), 9)
	for tt := 1; tt <= 12; tt++ {
		for i := 0; i < n; i++ {
			e.ScheduleUpdate(float64(tt), i)
		}
	}
	revisits := e.TraceRevisits(1 << 20)
	revOK := revisits > 0
	t.AddRow("ACA revisits configs (SCA cannot, Thm 1)", 1, fmt.Sprintf("%d revisits", revisits), verdict(revOK))
	if err := emit(t, w, md); err != nil {
		return err
	}
	ok := lockOK && serialOK && revOK
	_, err := fmt.Fprintf(w, "\npaper (§4): communication-asynchronous nondeterminism subsumes both classical CA and all sequential interleavings.\nmeasured → %s\n", verdict(ok))
	return err
}

// E13: census (ref [19]). Under -analytic the ST columns (FPs, proper
// cycles, cycle states, GoE) come from the transfer-matrix engine and are
// cross-checked against the enumeration; the trajectory columns
// (transients, incoming-transient structure) always need the enumeration.
func e13(w io.Writer, md bool) error {
	t := render.NewTable("n", "configs", "FPs", "proper cycles", "cycle states", "transients", "GoE", "cycles w/ incoming transients")
	allOK := true
	crossOK := true
	for n := 4; n <= 18; n += 2 {
		a := majRing(n, 1)
		c := buildPar(a).TakeCensus()
		allOK = allOK && c.CyclesWithIncomingTransients == 0 && c.ProperCycles > 0
		fps, cycles, cycleStates, goe := fmt.Sprint(c.FixedPoints), fmt.Sprint(c.ProperCycles), fmt.Sprint(c.CycleStates), fmt.Sprint(c.GardenOfEden)
		if analyticMode {
			ac, err := phasespace.BuildAnalyticCensus(a)
			if err != nil {
				return err
			}
			fps, cycles, cycleStates, goe = ac.FixedPoints.String(), ac.TwoCycles.String(), ac.TwoCycleStates.String(), ac.GardenOfEden.String()
			crossOK = crossOK &&
				ac.FixedPoints.Int64() == int64(c.FixedPoints) &&
				ac.TwoCycles.Int64() == int64(c.ProperCycles) &&
				ac.TwoCycleStates.Uint64() == c.CycleStates &&
				ac.GardenOfEden.Uint64() == c.GardenOfEden
		}
		t.AddRow(n, c.Configs, fps, cycles, cycleStates, c.Transients, goe, c.CyclesWithIncomingTransients)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	if analyticMode {
		if _, err := fmt.Fprintf(w, "\nST columns computed by the transfer-matrix engine; agreement with enumeration → %s\n", verdict(crossOK)); err != nil {
			return err
		}
		allOK = allOK && crossOK
	}
	_, err := fmt.Fprintf(w, "\npaper (citing [19]): non-FP cycles are very few and have no incoming transients.\nmeasured: cycle states are a vanishing fraction and every 2-cycle is an isolated pair → %s\n", verdict(allOK))
	return err
}

// E14: fairness and convergence time.
func e14(w io.Writer, md bool) error {
	t := render.NewTable("n", "schedule", "fairness bound", "trials", "mean steps to FP", "p90", "energy budget (max changes)")
	allOK := true
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{16, 48, 96} {
		a := majRing(n, 1)
		nw, err := energy.FromAutomaton(a)
		if err != nil {
			return err
		}
		lo, hi := nw.Bounds()
		budget := hi - lo
		for _, schedName := range []string{"round-robin", "random-fair", "uniform-random"} {
			var xs []float64
			trials := 30
			for trial := 0; trial < trials; trial++ {
				c := config.Random(rng, n, 0.5)
				var sched update.Schedule
				bound := "-"
				switch schedName {
				case "round-robin":
					sched = update.NewRoundRobin(n)
					bound = fmt.Sprint(n)
				case "random-fair":
					sched = update.NewRandomFair(n, int64(trial))
					bound = fmt.Sprint(2*n - 1)
				case "uniform-random":
					sched = update.NewRandom(n, int64(trial))
					bound = "∞ (expected-fair)"
				}
				steps, ok := a.ConvergeSequential(c, sched, 1000*n)
				if !ok {
					allOK = false
				}
				xs = append(xs, float64(steps))
				if trial == 0 {
					_ = bound
				}
			}
			s := stats.Summarize(xs)
			boundStr := map[string]string{
				"round-robin": fmt.Sprint(n), "random-fair": fmt.Sprint(2*n - 1), "uniform-random": "none",
			}[schedName]
			t.AddRow(n, schedName, boundStr, trials, fmt.Sprintf("%.0f", s.Mean), fmt.Sprintf("%.0f", s.P90), budget)
		}
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\npaper (footnote 2): any fair sequential order converges to a fixed point.\nmeasured: every trial converged; state-changing updates bounded by the Lyapunov budget → %s\n", verdict(allOK))
	return err
}

// E15: non-homogeneous threshold CA.
func e15(w io.Writer, md bool) error {
	t := render.NewTable("rule assignment", "n", "sequential acyclic")
	allOK := true
	n := 9
	sp := space.Ring(n, 1)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		rules := make([]rule.Rule, n)
		desc := ""
		for i := range rules {
			k := rng.Intn(5)
			rules[i] = rule.Threshold{K: k}
			desc += fmt.Sprint(k)
		}
		a, err := automaton.NewNonHomogeneous(sp, rules)
		if err != nil {
			return err
		}
		_, acyclic := buildSeq(a).Acyclic()
		allOK = allOK && acyclic
		t.AddRow("thresholds k="+desc, n, acyclic)
	}
	// Contrast: replace one node with XOR.
	rules := make([]rule.Rule, n)
	for i := range rules {
		rules[i] = rule.Majority(1)
	}
	rules[0] = rule.XOR{}
	a, err := automaton.NewNonHomogeneous(sp, rules)
	if err != nil {
		return err
	}
	_, acyclic := buildSeq(a).Acyclic()
	allOK = allOK && !acyclic
	t.AddRow("majority with one XOR node (contrast)", n, acyclic)
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\npaper (§4 extension): mixing different monotone threshold rules preserves sequential acyclicity; one non-monotone node breaks it.\nmeasured → %s\n", verdict(allOK))
	return err
}

// E16: SDS equivalence and Garden-of-Eden.
func e16(w io.Writer, md bool) error {
	t := render.NewTable("graph", "acyclic orientations a(G)", "trace classes", "distinct majority SDS maps", "GoE states (identity sweep)")
	allOK := true
	cases := []space.Space{
		space.Ring(5, 1), space.Ring(6, 1), space.Line(6, 1), space.CompleteGraph(4),
	}
	star, err := space.FromEdges(6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	if err != nil {
		return err
	}
	cases = append(cases, star)
	for _, sp := range cases {
		a := automaton.MustNew(sp, rule.Threshold{K: 2})
		ao := sds.AcyclicOrientations(sp)
		classes := sds.EquivalenceClasses(sp)
		distinct, _ := sds.DistinctMaps(a)
		perm := make([]int, sp.N())
		for i := range perm {
			perm[i] = i
		}
		goe := len(sds.MustNew(a, perm).GardenOfEden())
		allOK = allOK && uint64(classes) == ao && uint64(distinct) <= ao
		t.AddRow(sp.Name(), ao, classes, distinct, goe)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\nrefs [3-6]: #distinct SDS maps ≤ #trace classes = a(G) = |χ_G(−1)|; Garden-of-Eden states exist.\nmeasured: classes equal a(G) exactly; map counts within the bound → %s\n", verdict(allOK))
	return err
}

// E17: Lyapunov descent.
func e17(w io.Writer, md bool) error {
	n := 96
	a := majRing(n, 1)
	nw, err := energy.FromAutomaton(a)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(13))
	t := render.NewTable("quantity", "value")
	seqViolations, parViolations, flips := 0, 0, 0
	minDelta := int64(0)
	for trial := 0; trial < 30; trial++ {
		c := config.Random(rng, n, 0.5)
		sched := update.NewRandomFair(n, int64(trial))
		prev := nw.Sequential2E(c)
		for step := 0; step < 20*n; step++ {
			if a.UpdateNode(c, sched.Next()) {
				cur := nw.Sequential2E(c)
				d := cur - prev
				if d >= 0 {
					seqViolations++
				}
				if d < minDelta {
					minDelta = d
				}
				flips++
				prev = cur
			}
		}
		// Parallel bilinear energy along an orbit.
		x := config.Random(rng, n, 0.5)
		y := config.New(n)
		a.Step(y, x)
		prevB := nw.Bilinear2E(x, y)
		for step := 0; step < 50; step++ {
			z := config.New(n)
			a.Step(z, y)
			curB := nw.Bilinear2E(y, z)
			if curB > prevB {
				parViolations++
			}
			x, y, prevB = y, z, curB
		}
	}
	lo, hi := nw.Bounds()
	t.AddRow("sequential state-changing updates observed", flips)
	t.AddRow("sequential energy increases (must be 0)", seqViolations)
	t.AddRow("strictest single-flip decrease seen (Δ2E)", minDelta)
	t.AddRow("parallel bilinear energy increases (must be 0)", parViolations)
	t.AddRow("energy range [lo, hi]", fmt.Sprintf("[%d, %d]", lo, hi))
	if err := emit(t, w, md); err != nil {
		return err
	}
	ok := seqViolations == 0 && parViolations == 0
	_, err = fmt.Fprintf(w, "\ntheory (refs [7],[8]): E strictly decreases on sequential flips (⇒ Theorem 1); bilinear E non-increasing in parallel (⇒ Proposition 1).\nmeasured → %s\n", verdict(ok))
	return err
}

// E18: packed vs scalar throughput.
func e18(w io.Writer, md bool) error {
	n := 1 << 20
	steps := 8
	rng := rand.New(rand.NewSource(1))
	x0 := config.Random(rng, n, 0.5)
	t := render.NewTable("engine", "cells", "steps", "wall time", "cells/sec")

	measure := func(name string, f func()) float64 {
		startT := time.Now()
		f()
		el := time.Since(startT)
		rate := float64(n) * float64(steps) / el.Seconds()
		t.AddRow(name, n, steps, el.Round(time.Microsecond), fmt.Sprintf("%.2e", rate))
		return rate
	}

	a := majRing(n, 1)
	src := x0.Clone()
	dst := config.New(n)
	scalarRate := measure("scalar (automaton.Step)", func() {
		for i := 0; i < steps; i++ {
			a.Step(dst, src)
			src, dst = dst, src
		}
	})
	s1 := sim.NewMajorityRing(n, 1, x0)
	packedRate := measure("packed 1 worker", func() {
		for i := 0; i < steps; i++ {
			s1.Step()
		}
	})
	s2 := sim.NewMajorityRing(n, 1, x0)
	measure("packed GOMAXPROCS workers", func() {
		for i := 0; i < steps; i++ {
			s2.StepParallel(0)
		}
	})
	if err := emit(t, w, md); err != nil {
		return err
	}
	ok := packedRate > scalarRate
	_, err := fmt.Fprintf(w, "\nexpectation: word-packing beats the scalar reference by ~an order of magnitude (64 cells/op).\nmeasured: packed/scalar = %.1fx → %s\n", packedRate/scalarRate, verdict(ok))
	return err
}
