package main

import (
	"strings"
	"testing"
)

// TestEveryExperimentReproduces runs the complete harness end to end and
// fails if any section reports FAILED — the repository-level regression
// test for the whole reproduction. Heavier sections are skipped in -short
// mode.
func TestEveryExperimentReproduces(t *testing.T) {
	slow := map[string]bool{"E18": true, "E21": true, "E23": true}
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			if testing.Short() && slow[e.id] {
				t.Skip("slow experiment skipped in -short mode")
			}
			var b strings.Builder
			if err := e.run(&b, false); err != nil {
				t.Fatalf("%s errored: %v", e.id, err)
			}
			out := b.String()
			if strings.Contains(out, "FAILED") {
				t.Fatalf("%s reported FAILED:\n%s", e.id, out)
			}
			if !strings.Contains(out, "REPRODUCED") {
				t.Fatalf("%s produced no verdict:\n%s", e.id, out)
			}
		})
	}
}

// TestMarkdownModeProducesTables checks the -md rendering path.
func TestMarkdownModeProducesTables(t *testing.T) {
	var b strings.Builder
	if err := e01(&b, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| config |") {
		t.Errorf("markdown table missing:\n%s", b.String())
	}
}

// TestExperimentIDsUniqueAndOrdered guards the registry.
func TestExperimentIDsUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %s", e.id)
		}
		seen[e.id] = true
		if e.title == "" || e.run == nil {
			t.Fatalf("experiment %s incomplete", e.id)
		}
	}
	if len(experiments) < 24 {
		t.Fatalf("registry has %d experiments, want ≥ 24", len(experiments))
	}
}
