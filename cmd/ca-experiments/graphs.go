package main

import (
	"context"
	"fmt"
	"io"

	"repro/internal/automaton"
	"repro/internal/phasespace"
	"repro/internal/render"
	"repro/internal/rule"
	"repro/internal/sds"
	"repro/internal/space"
)

// E29: beyond the ring — ensemble census campaigns over seeded
// random-regular and power-law graphs (routed through the CSR graph batch
// kernel inside the phase-space builders), sequential acyclicity and
// order-independence on irregular topologies, and the hyperoctahedral
// quotient on hypercubes cross-checked byte-for-byte against raw
// enumeration.
func e29(w io.Writer, md bool) error {
	// Part 1: ensemble censuses. Each family is sampled at several seeds;
	// the paper's dichotomy must hold on every sample — parallel period
	// ≤ 2, sequential phase space acyclic.
	type family struct {
		name string
		k    int
		make func(seed int64) (space.Space, error)
	}
	fams := []family{
		{"random-regular d=3, n=14", 2, func(s int64) (space.Space, error) { return space.RandomRegular(14, 3, s) }},
		{"random-regular d=4, n=14", 3, func(s int64) (space.Space, error) { return space.RandomRegular(14, 4, s) }},
		{"power-law (BA) m=2, n=14", 3, func(s int64) (space.Space, error) { return space.PowerLaw(14, 2, s) }},
	}
	const ensembleSeeds = 8
	t := render.NewTable("ensemble (threshold-k)", "seeds", "FPs min..max", "2-cycles min..max", "GoE min..max", "max period", "seq acyclic")
	allOK := true
	for _, fam := range fams {
		var minFP, maxFP, minTC, maxTC, maxPer int
		var minGoE, maxGoE uint64
		acyclic := true
		for seed := int64(0); seed < ensembleSeeds; seed++ {
			sp, err := fam.make(seed)
			if err != nil {
				return fmt.Errorf("%s seed %d: %w", fam.name, seed, err)
			}
			a := automaton.MustNew(sp, rule.Threshold{K: fam.k})
			c := phasespace.BuildParallelWorkers(a, buildWorkers).TakeCensus()
			if seed == 0 {
				minFP, maxFP = c.FixedPoints, c.FixedPoints
				minTC, maxTC = c.ProperCycles, c.ProperCycles
				minGoE, maxGoE = c.GardenOfEden, c.GardenOfEden
			}
			minFP, maxFP = min(minFP, c.FixedPoints), max(maxFP, c.FixedPoints)
			minTC, maxTC = min(minTC, c.ProperCycles), max(maxTC, c.ProperCycles)
			minGoE, maxGoE = min(minGoE, c.GardenOfEden), max(maxGoE, c.GardenOfEden)
			maxPer = max(maxPer, c.MaxPeriod)
			if _, ok := phasespace.BuildSequential(a).Acyclic(); !ok {
				acyclic = false
			}
		}
		allOK = allOK && maxPer <= 2 && acyclic
		t.AddRow(fmt.Sprintf("%s (k=%d)", fam.name, fam.k), ensembleSeeds,
			fmt.Sprintf("%d..%d", minFP, maxFP),
			fmt.Sprintf("%d..%d", minTC, maxTC),
			fmt.Sprintf("%d..%d", minGoE, maxGoE), maxPer, acyclic)
	}
	if err := emit(t, w, md); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nevery sampled irregular graph obeys the dichotomy: parallel period ≤ 2, sequential acyclic → %s\n\n",
		verdict(allOK)); err != nil {
		return err
	}

	// Part 2: order-independence on a small irregular sample — the SDS
	// machinery of E16 transfers: distinct sequential global maps are
	// bounded by the acyclic orientations of the sample, and the fixed
	// points are shared by every update order.
	sp8, err := space.RandomRegular(8, 3, 5)
	if err != nil {
		return err
	}
	a8 := automaton.MustNew(sp8, rule.Threshold{K: 2})
	ao := sds.AcyclicOrientations(sp8)
	distinct, _ := sds.DistinctMaps(a8)
	sdsOK := uint64(distinct) <= ao
	if _, err := fmt.Fprintf(w, "order-independence on %s: %d distinct majority SDS maps ≤ a(G) = %d trace classes → %s\n\n",
		sp8.Name(), distinct, ao, verdict(sdsOK)); err != nil {
		return err
	}

	// Part 3: hyperoctahedral quotient. B_d = C_2 ≀ S_d acts on Q_d
	// (order 2^d·d!); the folded census must equal raw enumeration exactly.
	qt := render.NewTable("hypercube (majority)", "|B_d|", "configs", "orbit classes", "reduction", "census = raw")
	quotOK := true
	for d := 2; d <= 4; d++ {
		k := (d + 2) / 2
		a := automaton.MustNew(space.Hypercube(d), rule.Threshold{K: k})
		hq, err := phasespace.BuildHyperoctaParallelCtx(context.Background(), a, buildWorkers)
		if err != nil {
			return fmt.Errorf("Q_%d quotient: %w", d, err)
		}
		raw := phasespace.BuildParallelWorkers(a, buildWorkers).TakeCensus()
		same := hq.TakeCensus() == raw
		quotOK = quotOK && same
		qt.AddRow(fmt.Sprintf("Q_%d (k=%d)", d, k), hq.GroupOrder(), hq.Size(), hq.QuotientSize(),
			fmt.Sprintf("%.1f×", float64(hq.Size())/float64(hq.QuotientSize())), same)
	}
	if err := emit(qt, w, md); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\nhyperoctahedral orbit-weighted censuses are byte-identical to raw enumeration → %s\n",
		verdict(quotOK))
	return err
}
