// Command ca-serve runs the phase-space query server: a long-lived
// HTTP/JSON front end over the repository's census, basin, orbit and
// analytic engines, with a content-addressed result cache, singleflight
// coalescing, bounded admission, and graceful degradation to the
// transfer-matrix engine for over-cap queries.
//
//	ca-serve                            # listen on :8750
//	ca-serve -addr :9000 -cache-mb 128  # bigger cache elsewhere
//	ca-serve -spill /var/tmp/ca         # persist evicted results to disk
//	ca-serve -faults 'http:503:0.05'    # inject 5% HTTP 503s (testing)
//
// Endpoints (all GET, JSON):
//
//	/v1/census    ?n=&rule=&space=&semantics=&engine=   exact or analytic census
//	/v1/analytic  ?n=&rule=                             transfer-matrix census (any n)
//	/v1/orbit     ?n=&rule=&x0=&max_steps=              one trajectory
//	/v1/basins    ?n=&rule=&top=[&stream=1]             attractor basins (NDJSON stream opt.)
//	/v1/verify    ?n=&rule=&semantics=                  paper-claim verification
//	/healthz /readyz /metrics /faults                   operational probes
//
// On SIGINT/SIGTERM the server drains: new queries are refused with 503,
// in-flight requests finish (bounded by -drain-timeout), the cache is
// flushed to the spill directory, and a JSON drain report is printed.
// Exit status: 0 clean drain, 1 runtime or drain failure, 2 flag misuse,
// 130 forced by a second signal.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/faultinject"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8750", "listen address")
		cacheMB      = flag.Int("cache-mb", 64, "result cache budget in MiB")
		spill        = flag.String("spill", "", "directory for evicted/flushed cache entries (empty = memory only)")
		maxBuilds    = flag.Int("max-builds", 2, "concurrently running cold builds")
		queue        = flag.Int("queue", 8, "cold builds allowed to wait for a slot (negative = shed immediately)")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request deadline cap (and default)")
		workers      = flag.Int("workers", 0, "build workers per campaign (0 = GOMAXPROCS)")
		retries      = flag.Int("retries", 0, "supervised per-shard retry budget (0 = default)")
		faults       = flag.String("faults", "", "fault plan, e.g. 'http:503:0.05,panic:3,delay:1=2ms'")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on finishing in-flight work after SIGTERM")
		memBudgetMB  = flag.Int("mem-budget-mb", 0, "per-build dense-vs-streaming crossover in MiB (0 = 512)")
	)
	flag.Parse()
	cli.Exit2("ca-serve", cli.First(
		cli.Positive("-cache-mb", *cacheMB),
		cli.Positive("-max-builds", *maxBuilds),
		cli.PositiveDuration("-timeout", *timeout),
		cli.PositiveDuration("-drain-timeout", *drainTimeout),
		cli.NonNegative("-workers", *workers),
		cli.NonNegative("-retries", *retries),
		cli.NonNegative("-mem-budget-mb", *memBudgetMB),
	))
	var plan *faultinject.Plan
	if *faults != "" {
		p, err := faultinject.Parse(*faults)
		cli.Exit2("ca-serve", err)
		plan = p
	}
	cfg := serve.Config{
		Workers:    *workers,
		Retries:    *retries,
		CacheBytes: int64(*cacheMB) << 20,
		SpillDir:   *spill,
		MaxBuilds:  *maxBuilds,
		QueueDepth: *queue,
		MaxTimeout: *timeout,
		Faults:     plan,
		MemBudget:  int64(*memBudgetMB) << 20,
	}
	ctx, stop := cli.ForcedSignalContext(context.Background(), nil)
	code := run(ctx, cfg, *addr, *drainTimeout, nil, os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run serves until ctx is cancelled, then drains and reports. ready, when
// non-nil, receives the bound listen address once accepting (tests listen
// on :0). The returned code is the process exit status.
func run(ctx context.Context, cfg serve.Config, addr string, drainTimeout time.Duration, ready chan<- string, out, errw io.Writer) int {
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(errw, "ca-serve:", err)
		return 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(errw, "ca-serve:", err)
		return 1
	}
	hs := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(errw, "ca-serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(errw, "ca-serve:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: stop accepting and let in-flight handlers finish (Shutdown),
	// then flush the cache and account for stragglers (Drain). New queries
	// racing the shutdown are refused by the draining middleware.
	fmt.Fprintln(errw, "ca-serve: draining")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	shutdownErr := hs.Shutdown(dctx)
	rep := s.Drain(dctx)
	enc, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Fprintln(out, string(enc))
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		fmt.Fprintln(errw, "ca-serve: shutdown:", shutdownErr)
		return 1
	}
	if rep.Dropped > 0 || rep.FlushError != "" {
		return 1
	}
	return 0
}
