package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// startServer runs the full run() loop on a loopback port and returns the
// base URL, a cancel that triggers the drain, and a channel with the exit
// code and captured stdout (the drain report).
func startServer(t *testing.T, cfg serve.Config, drainTimeout time.Duration) (string, context.CancelFunc, chan result) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan result, 1)
	var out, errw bytes.Buffer
	go func() {
		code := run(ctx, cfg, "127.0.0.1:0", drainTimeout, ready, &out, &errw)
		done <- result{code: code, out: out.String(), errw: errw.String()}
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, done
	case r := <-done:
		t.Fatalf("server exited before accepting: code %d, stderr %s", r.code, r.errw)
		return "", cancel, done
	}
}

type result struct {
	code int
	out  string
	errw string
}

func waitExit(t *testing.T, done chan result) result {
	t.Helper()
	select {
	case r := <-done:
		return r
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after cancel")
		return result{}
	}
}

// TestServeAnswersAndDrainsClean: the binary's run loop serves a query,
// drains on cancellation with zero dropped requests, flushes the cache to
// the spill directory, and exits 0 with a parseable drain report.
func TestServeAnswersAndDrainsClean(t *testing.T) {
	dir := t.TempDir()
	base, cancel, done := startServer(t, serve.Config{SpillDir: dir}, 10*time.Second)
	resp, err := http.Get(base + "/v1/census?n=10&rule=majority")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("census got %d: %s", resp.StatusCode, body)
	}
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}

	cancel()
	r := waitExit(t, done)
	if r.code != 0 {
		t.Fatalf("clean drain exited %d; stderr:\n%s", r.code, r.errw)
	}
	var rep serve.DrainReport
	if err := json.Unmarshal([]byte(r.out), &rep); err != nil {
		t.Fatalf("drain report is not JSON: %v\n%s", err, r.out)
	}
	if rep.Dropped != 0 || !rep.CacheFlushed {
		t.Fatalf("drain report: %+v", rep)
	}
	spills, err := filepath.Glob(filepath.Join(dir, "*.ckpt.gz"))
	if err != nil || len(spills) == 0 {
		t.Fatalf("no spill files after drain flush (err %v)", err)
	}
	// The drained listener is gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after exit")
	}
}

// TestServeDrainWaitsForInFlight: a request in flight when the signal
// lands completes with 200 and the report counts zero dropped.
func TestServeDrainWaitsForInFlight(t *testing.T) {
	base, cancel, done := startServer(t, serve.Config{}, 20*time.Second)
	got := make(chan int, 1)
	go func() {
		// n=16 enum is a real multi-shard build: slow enough that the
		// drain overlaps it, fast enough for the drain budget.
		resp, err := http.Get(base + "/v1/census?n=16&rule=majority&engine=enum&tag=drainwait")
		if err != nil {
			got <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if code := <-got; code != http.StatusOK {
		t.Fatalf("in-flight request during drain got %d", code)
	}
	r := waitExit(t, done)
	if r.code != 0 {
		t.Fatalf("drain with in-flight work exited %d; stderr:\n%s", r.code, r.errw)
	}
	var rep serve.DrainReport
	if err := json.Unmarshal([]byte(r.out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 {
		t.Fatalf("drain dropped %d in-flight requests", rep.Dropped)
	}
}

// TestServeRefusesBadListenAddress: an unbindable address exits 1 and
// says why on stderr.
func TestServeRefusesBadListenAddress(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(context.Background(), serve.Config{}, "256.0.0.1:0", time.Second, nil, &out, &errw)
	if code != 1 {
		t.Fatalf("bad address exited %d", code)
	}
	if !strings.Contains(errw.String(), "ca-serve:") {
		t.Fatalf("no diagnostic on stderr: %q", errw.String())
	}
}

// TestServeBadSpillDirFails: a spill path that cannot be created is a
// startup failure, not a silent memory-only fallback.
func TestServeBadSpillDirFails(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	code := run(context.Background(), serve.Config{SpillDir: filepath.Join(file, "sub")},
		"127.0.0.1:0", time.Second, nil, &out, &errw)
	if code != 1 {
		t.Fatalf("bad spill dir exited %d (stderr %q)", code, errw.String())
	}
}

// TestServeReportsDegradedOverCap exercises the binary end to end on the
// degradation path: a query no exact engine can hold comes back 200.
func TestServeReportsDegradedOverCap(t *testing.T) {
	base, cancel, done := startServer(t, serve.Config{}, 5*time.Second)
	defer func() { cancel(); waitExit(t, done) }()
	resp, err := http.Get(base + fmt.Sprintf("/v1/census?n=%d&rule=threshold:2", 200))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("over-cap census got %d: %s", resp.StatusCode, body)
	}
	var parsed struct {
		Degraded bool   `json:"degraded"`
		Engine   string `json:"engine"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatal(err)
	}
	if !parsed.Degraded || parsed.Engine != "analytic" {
		t.Fatalf("over-cap answer not degraded analytic: %s", body)
	}
}
