package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/verify"
)

func testParams(out string) params {
	return params{seed: 1, rounds: 25, workers: 2, out: out}
}

func TestRunFullSuiteWritesWellFormedReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "VERIFY_test.json")
	var b strings.Builder
	pass, err := run(context.Background(), &b, testParams(out))
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatalf("suite failed:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "all claims PASS") {
		t.Fatalf("missing verdict line:\n%s", b.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep verify.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.Pass || rep.Seed != 1 || rep.Rounds != 25 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	want := map[string]bool{}
	for _, c := range verify.Claims() {
		want[c.ID] = true
	}
	for _, r := range rep.Claims {
		if !r.Pass {
			t.Errorf("claim %s failed: %s", r.ID, r.Counterexample)
		}
		delete(want, r.ID)
	}
	if len(want) != 0 {
		t.Fatalf("claims missing from report: %v", want)
	}
}

func TestClaimFilter(t *testing.T) {
	out := filepath.Join(t.TempDir(), "v.json")
	var b strings.Builder
	p := testParams(out)
	p.rounds, p.workers, p.claims = 5, 1, "f1a, l1ii"
	pass, err := run(context.Background(), &b, p)
	if err != nil || !pass {
		t.Fatalf("filtered run failed: pass=%v err=%v", pass, err)
	}
	raw, _ := os.ReadFile(out)
	var rep verify.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Claims) != 2 || rep.Claims[0].ID != "F1A" || rep.Claims[1].ID != "L1II" {
		t.Fatalf("filter selected %+v", rep.Claims)
	}
}

func TestUnknownClaimIDErrors(t *testing.T) {
	var b strings.Builder
	p := testParams(filepath.Join(t.TempDir(), "v.json"))
	p.claims = "NOPE"
	if _, err := run(context.Background(), &b, p); err == nil {
		t.Fatal("expected an error for an unknown claim id")
	}
}

func TestEmptyClaimEntryErrors(t *testing.T) {
	var b strings.Builder
	p := testParams(filepath.Join(t.TempDir(), "v.json"))
	p.claims = "F1A,,L1II"
	if _, err := run(context.Background(), &b, p); err == nil {
		t.Fatal("expected an error for an empty -claims entry")
	}
}

func TestListClaims(t *testing.T) {
	var b strings.Builder
	listClaims(&b)
	for _, id := range []string{"F1A", "F1B", "L1I", "L1II", "T1", "T2", "ORC-BATCH"} {
		if !strings.Contains(b.String(), id) {
			t.Fatalf("-list output missing %s:\n%s", id, b.String())
		}
	}
}

// TestFaultPlanStillPasses is the in-process twin of the CI smoke test:
// an injected panic on claim shard 1 must be absorbed by the supervisor
// with every claim still passing.
func TestFaultPlanStillPasses(t *testing.T) {
	out := filepath.Join(t.TempDir(), "v.json")
	var b strings.Builder
	p := testParams(out)
	p.rounds, p.claims, p.faults = 10, "F1A,F1B,L1I", "panic:1,delay:0=1ms"
	pass, err := run(context.Background(), &b, p)
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatalf("faulted run failed:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "fault plan") {
		t.Fatalf("missing fault summary line:\n%s", b.String())
	}
}

func TestBadFaultSpecErrors(t *testing.T) {
	var b strings.Builder
	p := testParams(filepath.Join(t.TempDir(), "v.json"))
	p.faults = "explode:1"
	if _, err := run(context.Background(), &b, p); err == nil {
		t.Fatal("expected an error for an unknown fault kind")
	}
}

// TestInterruptedRunFlushesPartialReportAndResumes cancels a campaign
// after the first claim verdict lands, checks the partial report, then
// resumes from the checkpoint and compares the final verdicts against an
// uninterrupted run.
func TestInterruptedRunFlushesPartialReportAndResumes(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "verify.ckpt.gz")
	claims := "F1A,F1B,L1I,L1II"

	// Uninterrupted baseline.
	baseOut := filepath.Join(dir, "base.json")
	var b strings.Builder
	p := testParams(baseOut)
	p.rounds, p.claims = 10, claims
	if pass, err := run(context.Background(), &b, p); err != nil || !pass {
		t.Fatalf("baseline failed: pass=%v err=%v", pass, err)
	}

	// Interrupted run: cancel once the second claim is underway.
	ctx, cancel := context.WithCancel(context.Background())
	partialOut := filepath.Join(dir, "partial.json")
	pp := testParams(partialOut)
	pp.rounds, pp.claims, pp.checkpoint = 10, claims, ckpt
	done := 0
	origRun := runClaims
	runClaims = func(ctx context.Context, cl []verify.Claim, opts verify.RunOptions) (verify.Report, error) {
		opts.OnResult = func(verify.Result) {
			done++
			if done == 2 {
				cancel()
			}
		}
		return origRun(ctx, cl, opts)
	}
	defer func() { runClaims = origRun }()
	var pb strings.Builder
	if _, err := run(ctx, &pb, pp); err == nil {
		t.Fatalf("interrupted run reported no error:\n%s", pb.String())
	}
	runClaims = origRun
	var partial verify.Report
	raw, err := os.ReadFile(partialOut)
	if err != nil {
		t.Fatalf("partial report missing: %v", err)
	}
	if err := json.Unmarshal(raw, &partial); err != nil {
		t.Fatal(err)
	}
	if len(partial.Claims) == 0 || len(partial.Claims) >= 4 {
		t.Fatalf("partial report has %d claims, want 1..3", len(partial.Claims))
	}

	// Resume and compare verdicts with the baseline.
	resumeOut := filepath.Join(dir, "resumed.json")
	rp := testParams(resumeOut)
	rp.rounds, rp.claims, rp.checkpoint, rp.resume = 10, claims, ckpt, true
	var rb strings.Builder
	if pass, err := run(context.Background(), &rb, rp); err != nil || !pass {
		t.Fatalf("resumed run failed: pass=%v err=%v\n%s", pass, err, rb.String())
	}
	var base, resumed verify.Report
	braw, _ := os.ReadFile(baseOut)
	rraw, _ := os.ReadFile(resumeOut)
	if err := json.Unmarshal(braw, &base); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rraw, &resumed); err != nil {
		t.Fatal(err)
	}
	if len(base.Claims) != len(resumed.Claims) {
		t.Fatalf("claim counts differ: %d vs %d", len(base.Claims), len(resumed.Claims))
	}
	for i := range base.Claims {
		b, r := base.Claims[i], resumed.Claims[i]
		b.DurationMS, r.DurationMS = 0, 0
		bj, _ := json.Marshal(b)
		rj, _ := json.Marshal(r)
		if string(bj) != string(rj) {
			t.Fatalf("verdict %d differs after resume:\n%s\n%s", i, bj, rj)
		}
	}
}
