package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/verify"
)

func TestRunFullSuiteWritesWellFormedReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "VERIFY_test.json")
	var b strings.Builder
	pass, err := run(&b, 1, 25, 2, out, "")
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatalf("suite failed:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "all claims PASS") {
		t.Fatalf("missing verdict line:\n%s", b.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep verify.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.Pass || rep.Seed != 1 || rep.Rounds != 25 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	want := map[string]bool{}
	for _, c := range verify.Claims() {
		want[c.ID] = true
	}
	for _, r := range rep.Claims {
		if !r.Pass {
			t.Errorf("claim %s failed: %s", r.ID, r.Counterexample)
		}
		delete(want, r.ID)
	}
	if len(want) != 0 {
		t.Fatalf("claims missing from report: %v", want)
	}
}

func TestClaimFilter(t *testing.T) {
	out := filepath.Join(t.TempDir(), "v.json")
	var b strings.Builder
	pass, err := run(&b, 1, 5, 1, out, "f1a, l1ii")
	if err != nil || !pass {
		t.Fatalf("filtered run failed: pass=%v err=%v", pass, err)
	}
	raw, _ := os.ReadFile(out)
	var rep verify.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Claims) != 2 || rep.Claims[0].ID != "F1A" || rep.Claims[1].ID != "L1II" {
		t.Fatalf("filter selected %+v", rep.Claims)
	}
}

func TestUnknownClaimIDErrors(t *testing.T) {
	var b strings.Builder
	if _, err := run(&b, 1, 5, 1, filepath.Join(t.TempDir(), "v.json"), "NOPE"); err == nil {
		t.Fatal("expected an error for an unknown claim id")
	}
}

func TestListClaims(t *testing.T) {
	var b strings.Builder
	listClaims(&b)
	for _, id := range []string{"F1A", "F1B", "L1I", "L1II", "T1", "T2", "ORC-BATCH"} {
		if !strings.Contains(b.String(), id) {
			t.Fatalf("-list output missing %s:\n%s", id, b.String())
		}
	}
}
