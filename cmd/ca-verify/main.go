// Command ca-verify runs the property-based claim-verification suite of
// internal/verify: every paper claim (Figure 1, Lemma 1, Theorems 1–2),
// the metamorphic symmetry properties, and the differential oracles
// pinning the scalar, packed, and sharded evaluation engines to one
// another. Results are printed as a table and written as machine-readable
// JSON (claim id → pass/fail → shrunk counterexample):
//
//	ca-verify -seed 1 -rounds 200            # full suite, VERIFY_<date>.json
//	ca-verify -claims L1II,T1 -rounds 1000   # deep-dive two claims
//	ca-verify -list                          # enumerate claim ids
//
// The campaign runs under the fault-tolerant runtime: SIGINT/SIGTERM
// cancel it, flush a partial report plus a final checkpoint, and exit
// 130; -checkpoint/-resume continue an interrupted run with verdicts
// identical to an uninterrupted one; -faults injects a deterministic
// fault plan into claim execution to exercise the supervisor:
//
//	ca-verify -checkpoint verify.ckpt.gz            # interruptible
//	ca-verify -checkpoint verify.ckpt.gz -resume    # continue
//	ca-verify -rounds 20 -faults panic:1            # still exits 0
//
// The process exits 1 when any claim fails (2 on flag misuse), so CI can
// gate on it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/faultinject"
	"repro/internal/render"
	"repro/internal/runtime"
	"repro/internal/verify"
)

type params struct {
	seed       int64
	rounds     int
	workers    int
	out        string
	claims     string
	checkpoint string
	resume     bool
	faults     string
}

func main() {
	var p params
	flag.Int64Var(&p.seed, "seed", 1, "run seed; every claim derives its own stream from it")
	flag.IntVar(&p.rounds, "rounds", 200, "sampling budget per claim")
	flag.IntVar(&p.workers, "workers", 0, "phase-space builder worker count (0 = varied per build)")
	flag.StringVar(&p.out, "out", "", "report path (default VERIFY_<date>.json in the working directory)")
	flag.StringVar(&p.claims, "claims", "", "comma-separated claim ids to run (default: all)")
	flag.StringVar(&p.checkpoint, "checkpoint", "", "campaign checkpoint path (.gz compresses); written after every claim")
	flag.BoolVar(&p.resume, "resume", false, "resume a checkpointed campaign, reusing completed claim verdicts")
	flag.StringVar(&p.faults, "faults", "", "deterministic fault plan to inject into claim execution, e.g. panic:1 or delay:0=5ms (debug)")
	list := flag.Bool("list", false, "list claim ids and exit")
	prof := cli.NewProfile()
	flag.Parse()

	cli.Exit2("ca-verify", cli.First(
		cli.Positive("-rounds", p.rounds),
		cli.NonNegative("-workers", p.workers),
		cli.CSVEntries("-claims", p.claims),
		cli.Writable("-out", p.out),
		cli.Writable("-checkpoint", p.checkpoint),
	))
	if *list {
		listClaims(os.Stdout)
		return
	}
	stopProf := prof.MustStart("ca-verify")

	// Second SIGINT/SIGTERM force-exits but still flushes the profiles.
	ctx, stop := cli.ForcedSignalContext(context.Background(), stopProf)
	defer stop()
	ok, err := run(ctx, os.Stdout, p)
	stopProf() // explicit: the os.Exit paths below skip defers
	switch {
	case cli.Interrupted(err):
		fmt.Fprintln(os.Stderr, "ca-verify: interrupted; partial report and checkpoint flushed")
		os.Exit(cli.InterruptExitCode)
	case err != nil:
		fmt.Fprintln(os.Stderr, "ca-verify:", err)
		os.Exit(1)
	case !ok:
		os.Exit(1)
	}
}

func listClaims(w io.Writer) {
	tab := render.NewTable("id", "paper item", "claim")
	for _, c := range verify.Claims() {
		tab.AddRow(c.ID, c.Paper, c.Title)
	}
	tab.Write(w)
}

// selectClaims resolves the -claims filter against the registry.
func selectClaims(filter string) ([]verify.Claim, error) {
	if filter == "" {
		return verify.Claims(), nil
	}
	var out []verify.Claim
	for _, id := range strings.Split(filter, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			return nil, fmt.Errorf("empty claim id in -claims %q", filter)
		}
		c, ok := verify.ClaimByID(strings.ToUpper(id))
		if !ok {
			return nil, fmt.Errorf("unknown claim id %q (try -list)", id)
		}
		out = append(out, c)
	}
	return out, nil
}

// runClaims is verify.RunCtx behind a seam so tests can observe and
// interrupt a campaign mid-flight.
var runClaims = verify.RunCtx

func run(ctx context.Context, w io.Writer, p params) (pass bool, err error) {
	claims, err := selectClaims(p.claims)
	if err != nil {
		return false, err
	}
	plan, err := faultinject.Parse(p.faults)
	if err != nil {
		return false, err
	}
	var stats runtime.Stats
	super := runtime.Options{OnEvent: stats.Observe}
	if plan != nil {
		super.Hooks = plan
	}

	rep, runErr := runClaims(ctx, claims, verify.RunOptions{
		Seed:       p.seed,
		Rounds:     p.rounds,
		Workers:    p.workers,
		Super:      super,
		Checkpoint: p.checkpoint,
		Resume:     p.resume,
	})

	tab := render.NewTable("claim", "paper item", "verdict", "ms")
	for _, r := range rep.Claims {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		tab.AddRow(r.ID, r.Paper, verdict, r.DurationMS)
	}
	if err := tab.Write(w); err != nil {
		return false, err
	}
	for _, r := range rep.Claims {
		if !r.Pass {
			fmt.Fprintf(w, "FAIL %s (%s): %s\n  counterexample: %s\n",
				r.ID, r.Paper, r.Title, r.Counterexample)
		}
	}
	if plan != nil {
		s := stats.Snapshot()
		fmt.Fprintf(w, "fault plan %q: injected=%d retried=%d degraded=%d gave-up=%d\n",
			plan, plan.Fired(), s.Retries, s.Degraded, s.GaveUp)
	}

	out := p.out
	if out == "" {
		out = rep.Filename()
	}
	f, err := os.Create(out)
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return false, err
	}
	if runErr != nil {
		fmt.Fprintf(w, "interrupted after %d/%d claims · partial report written to %s\n",
			len(rep.Claims), len(claims), out)
		return false, runErr
	}
	verdict := "all claims PASS"
	if !rep.Pass {
		verdict = "CLAIMS FAILED"
	}
	fmt.Fprintf(w, "%s · seed=%d rounds=%d · report written to %s\n",
		verdict, rep.Seed, rep.Rounds, out)
	return rep.Pass, nil
}
