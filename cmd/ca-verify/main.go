// Command ca-verify runs the property-based claim-verification suite of
// internal/verify: every paper claim (Figure 1, Lemma 1, Theorems 1–2),
// the metamorphic symmetry properties, and the differential oracles
// pinning the scalar, packed, and sharded evaluation engines to one
// another. Results are printed as a table and written as machine-readable
// JSON (claim id → pass/fail → shrunk counterexample):
//
//	ca-verify -seed 1 -rounds 200            # full suite, VERIFY_<date>.json
//	ca-verify -claims L1II,T1 -rounds 1000   # deep-dive two claims
//	ca-verify -list                          # enumerate claim ids
//
// The process exits 1 when any claim fails, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/render"
	"repro/internal/verify"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "run seed; every claim derives its own stream from it")
		rounds  = flag.Int("rounds", 200, "sampling budget per claim")
		workers = flag.Int("workers", 0, "phase-space builder worker count (0 = varied per build)")
		out     = flag.String("out", "", "report path (default VERIFY_<date>.json in the working directory)")
		claims  = flag.String("claims", "", "comma-separated claim ids to run (default: all)")
		list    = flag.Bool("list", false, "list claim ids and exit")
	)
	flag.Parse()
	if *list {
		listClaims(os.Stdout)
		return
	}
	ok, err := run(os.Stdout, *seed, *rounds, *workers, *out, *claims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ca-verify:", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(1)
	}
}

func listClaims(w io.Writer) {
	tab := render.NewTable("id", "paper item", "claim")
	for _, c := range verify.Claims() {
		tab.AddRow(c.ID, c.Paper, c.Title)
	}
	tab.Write(w)
}

// selectClaims resolves the -claims filter against the registry.
func selectClaims(filter string) ([]verify.Claim, error) {
	if filter == "" {
		return verify.Claims(), nil
	}
	var out []verify.Claim
	for _, id := range strings.Split(filter, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		c, ok := verify.ClaimByID(strings.ToUpper(id))
		if !ok {
			return nil, fmt.Errorf("unknown claim id %q (try -list)", id)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("claim filter %q selected nothing", filter)
	}
	return out, nil
}

func run(w io.Writer, seed int64, rounds, workers int, out, filter string) (pass bool, err error) {
	claims, err := selectClaims(filter)
	if err != nil {
		return false, err
	}
	rep := verify.Run(claims, seed, rounds, workers)

	tab := render.NewTable("claim", "paper item", "verdict", "ms")
	for _, r := range rep.Claims {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		tab.AddRow(r.ID, r.Paper, verdict, r.DurationMS)
	}
	if err := tab.Write(w); err != nil {
		return false, err
	}
	for _, r := range rep.Claims {
		if !r.Pass {
			fmt.Fprintf(w, "FAIL %s (%s): %s\n  counterexample: %s\n",
				r.ID, r.Paper, r.Title, r.Counterexample)
		}
	}

	if out == "" {
		out = rep.Filename()
	}
	f, err := os.Create(out)
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return false, err
	}
	verdict := "all claims PASS"
	if !rep.Pass {
		verdict = "CLAIMS FAILED"
	}
	fmt.Fprintf(w, "%s · seed=%d rounds=%d · report written to %s\n",
		verdict, rep.Seed, rep.Rounds, out)
	return rep.Pass, nil
}
