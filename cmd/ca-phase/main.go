// Command ca-phase enumerates and classifies the complete phase space
// (configuration space) of a small cellular automaton, in both the parallel
// and the sequential update discipline, and can export Graphviz DOT —
// regenerating the paper's Figure 1 mechanically:
//
//	ca-phase -n 2 -space complete -rule xor -dot parallel   > fig1a.dot
//	ca-phase -n 2 -space complete -rule xor -dot sequential > fig1b.dot
//	ca-phase -n 10 -rule majority
//
// Large enumerations run under the fault-tolerant campaign runtime:
// SIGINT/SIGTERM cancel the build, flush a final checkpoint (when
// -checkpoint is set), and exit 130; -resume continues an interrupted
// enumeration with successor arrays byte-identical to an uninterrupted
// run. The parallel build checkpoints to the -checkpoint path itself and
// the sequential build to that path + ".seq"; -faults injects a
// deterministic fault plan into the build shards (debug):
//
//	ca-phase -n 24 -rule majority -checkpoint phase.ckpt.gz
//	ca-phase -n 24 -rule majority -checkpoint phase.ckpt.gz -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"math/big"
	"os"
	"strconv"
	"strings"

	"repro/internal/automaton"
	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/phasespace"
	"repro/internal/render"
	"repro/internal/rule"
	"repro/internal/runtime"
	"repro/internal/space"
)

func main() {
	var (
		n          = flag.Int("n", 8, "number of cells")
		r          = flag.Int("r", 1, "neighborhood radius")
		ruleSpec   = flag.String("rule", "majority", "rule: majority | threshold:K | xor | eca:CODE")
		spSpec     = flag.String("space", "ring", "space: ring | line | complete | hypercube:D | torus:WxH | graph:regular:D:SEED | graph:powerlaw:M:SEED")
		dot        = flag.String("dot", "", "emit DOT instead of analysis: parallel | sequential")
		verbose    = flag.Bool("v", false, "list cycles and pseudo-fixed points")
		noMemory   = flag.Bool("memoryless", false, "exclude each node from its own neighborhood (memoryless CA)")
		workers    = flag.Int("workers", 0, "phase-space builder worker count (0 = GOMAXPROCS)")
		checkpoint = flag.String("checkpoint", "", "build checkpoint path (.gz compresses; sequential build appends .seq)")
		resume     = flag.Bool("resume", false, "resume an interrupted build from its checkpoint")
		faults     = flag.String("faults", "", "deterministic fault plan to inject into build shards, e.g. panic:3 (debug)")
		memoize    = flag.Bool("memoize", false, "reuse in-process memoized successor tables across builds")
		quotient   = flag.Bool("quotient", false, "enumerate dihedral symmetry classes (necklace representatives) instead of raw configurations; census tables are lifted to identical full-space counts by orbit weighting")
		analytic   = flag.Bool("analytic", false, "transfer-matrix analytic census: exact fixed-point / 2-cycle / Garden-of-Eden counts in O(log n), no enumeration; ring spaces only, ST quantities only — n is unbounded")
		strategy   = flag.String("strategy", "auto", "phase-space storage: auto | dense | stream (auto streams when the dense tables would exceed -mem-budget-mb)")
		memBudget  = flag.Int("mem-budget-mb", 0, "dense-vs-streaming crossover for -strategy auto, in MiB (0 = 512)")
	)
	prof := cli.NewProfile()
	flag.Parse()
	cli.Exit2("ca-phase", cli.First(
		cli.Positive("-n", *n),
		cli.NonNegative("-r", *r),
		cli.NonNegative("-workers", *workers),
		cli.NonNegative("-mem-budget-mb", *memBudget),
		cli.Writable("-checkpoint", *checkpoint),
	))
	strat, err := parseStrategy(*strategy)
	cli.Exit2("ca-phase", err)
	stopProf := prof.MustStart("ca-phase")
	// Second SIGINT/SIGTERM force-exits but still flushes the profiles.
	ctx, stop := cli.ForcedSignalContext(context.Background(), stopProf)
	defer stop()
	if *analytic {
		err = runAnalytic(*n, *r, *ruleSpec, *spSpec, *dot, *noMemory, *quotient)
	} else {
		err = run(ctx, *n, *r, *ruleSpec, *spSpec, *dot, *verbose, *noMemory, *workers, *checkpoint, *resume, *faults, *memoize, *quotient, strat, *memBudget)
	}
	stopProf() // explicit: the os.Exit paths below skip defers
	switch {
	case cli.Interrupted(err):
		fmt.Fprintln(os.Stderr, "ca-phase: interrupted; checkpoint flushed")
		os.Exit(cli.InterruptExitCode)
	case err != nil:
		fmt.Fprintln(os.Stderr, "ca-phase:", err)
		os.Exit(1)
	}
}

// parseStrategy maps the -strategy flag to a phasespace.Strategy.
func parseStrategy(s string) (phasespace.Strategy, error) {
	switch s {
	case "auto":
		return phasespace.StrategyAuto, nil
	case "dense":
		return phasespace.StrategyDense, nil
	case "stream":
		return phasespace.StrategyStream, nil
	}
	return phasespace.StrategyAuto, fmt.Errorf("-strategy must be auto, dense or stream, got %q", s)
}

func run(ctx context.Context, n, r int, ruleSpec, spSpec, dot string, verbose, noMemory bool, workers int, checkpoint string, resume bool, faults string, memoize, quotient bool, strat phasespace.Strategy, memBudgetMB int) error {
	sp, err := parseSpace(spSpec, n, r)
	if err != nil {
		return err
	}
	if noMemory {
		sp = space.Memoryless(sp)
	}
	rl, err := parseRule(ruleSpec, r)
	if err != nil {
		return err
	}
	a, err := automaton.New(sp, rl)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%s on %s", rl.Name(), sp.Name())

	plan, err := faultinject.Parse(faults)
	if err != nil {
		return err
	}
	opts := phasespace.BuildOptions{
		Options:      runtime.Options{Workers: workers},
		Checkpoint:   checkpoint,
		Resume:       resume,
		Memoize:      memoize,
		Strategy:     strat,
		MemoryBudget: int64(memBudgetMB) << 20,
	}
	if plan != nil {
		opts.Hooks = plan
	}
	seqOpts := opts
	if checkpoint != "" {
		seqOpts.Checkpoint = checkpoint + ".seq"
	}

	if quotient {
		if dot != "" {
			return fmt.Errorf("-dot export draws raw configurations and is not supported with -quotient")
		}
		return runQuotient(ctx, a, name, opts, seqOpts, verbose)
	}

	switch dot {
	case "parallel":
		p, err := phasespace.BuildParallelOpts(ctx, a, opts)
		if err != nil {
			return err
		}
		return p.WriteDOT(os.Stdout, name)
	case "sequential":
		s, err := phasespace.BuildSequentialOpts(ctx, a, seqOpts)
		if err != nil {
			return err
		}
		return s.WriteDOT(os.Stdout, name, false)
	case "":
	default:
		return fmt.Errorf("unknown -dot mode %q", dot)
	}

	p, err := phasespace.BuildParallelOpts(ctx, a, opts)
	if err != nil {
		return err
	}
	if err := p.ClassifyCtx(ctx); err != nil {
		return err
	}
	c := p.TakeCensus()
	fmt.Printf("# %s\n\n== parallel phase space ==\n", name)
	tab := render.NewTable("quantity", "value")
	tab.AddRow("configurations", c.Configs)
	tab.AddRow("fixed points", c.FixedPoints)
	tab.AddRow("proper cycles", c.ProperCycles)
	tab.AddRow("cycle states", c.CycleStates)
	tab.AddRow("max period", c.MaxPeriod)
	tab.AddRow("transients", c.Transients)
	tab.AddRow("max transient length", c.MaxTransientLen)
	tab.AddRow("garden-of-eden states", c.GardenOfEden)
	tab.AddRow("cycles with incoming transients", c.CyclesWithIncomingTransients)
	if err := tab.Write(os.Stdout); err != nil {
		return err
	}
	if verbose {
		for _, cyc := range p.ProperCycles() {
			parts := make([]string, len(cyc))
			for i, x := range cyc {
				parts[i] = config.FromIndex(x, sp.N()).String()
			}
			fmt.Printf("cycle: %s\n", strings.Join(parts, " -> "))
		}
	}

	if sp.N() <= phasespace.MaxSequentialNodes {
		s, err := phasespace.BuildSequentialOpts(ctx, a, seqOpts)
		if err != nil {
			return err
		}
		fmt.Printf("\n== sequential phase space ==\n")
		stab := render.NewTable("quantity", "value")
		witness, acyclic := s.Acyclic()
		stab.AddRow("acyclic (no update sequence can cycle)", acyclic)
		stab.AddRow("fixed points", len(s.FixedPoints()))
		stab.AddRow("pseudo-fixed points", len(s.PseudoFixedPoints()))
		stab.AddRow("unreachable states", len(s.Unreachable()))
		stab.AddRow("temporal 2-cycles", len(s.TwoCycles()))
		if err := stab.Write(os.Stdout); err != nil {
			return err
		}
		if verbose && !acyclic {
			parts := make([]string, len(witness))
			for i, x := range witness {
				parts[i] = config.FromIndex(x, sp.N()).String()
			}
			fmt.Printf("witness cycle: %s\n", strings.Join(parts, " -> "))
		}
	}
	return nil
}

// runQuotient is the -quotient analysis path: phase spaces built on
// dihedral symmetry classes, with censuses lifted to full-space counts by
// orbit weighting. The tables are row-for-row identical to the raw path's
// (that is the point — and a cheap differential check), with -v adding the
// class counts that show how much smaller the enumeration was.
func runQuotient(ctx context.Context, a *automaton.Automaton, name string, opts, seqOpts phasespace.BuildOptions, verbose bool) error {
	q, err := phasespace.BuildQuotientParallelOpts(ctx, a, opts)
	if err != nil {
		return err
	}
	if err := q.ClassifyCtx(ctx); err != nil {
		return err
	}
	c := q.TakeCensus()
	fmt.Printf("# %s\n\n== parallel phase space ==\n", name)
	tab := render.NewTable("quantity", "value")
	tab.AddRow("configurations", c.Configs)
	tab.AddRow("fixed points", c.FixedPoints)
	tab.AddRow("proper cycles", c.ProperCycles)
	tab.AddRow("cycle states", c.CycleStates)
	tab.AddRow("max period", c.MaxPeriod)
	tab.AddRow("transients", c.Transients)
	tab.AddRow("max transient length", c.MaxTransientLen)
	tab.AddRow("garden-of-eden states", c.GardenOfEden)
	tab.AddRow("cycles with incoming transients", c.CyclesWithIncomingTransients)
	if err := tab.Write(os.Stdout); err != nil {
		return err
	}
	if verbose {
		fmt.Printf("symmetry classes: %d (of %d configurations)\n", q.QuotientSize(), c.Configs)
	}

	if a.N() <= phasespace.MaxQuotientSequentialNodes {
		qs, err := phasespace.BuildQuotientSequentialOpts(ctx, a, seqOpts)
		if err != nil {
			return err
		}
		sc := qs.TakeCensus()
		fmt.Printf("\n== sequential phase space ==\n")
		stab := render.NewTable("quantity", "value")
		stab.AddRow("acyclic (no update sequence can cycle)", sc.Acyclic)
		stab.AddRow("fixed points", sc.FixedPoints)
		stab.AddRow("pseudo-fixed points", sc.PseudoFixed)
		stab.AddRow("unreachable states", sc.Unreachable)
		stab.AddRow("temporal 2-cycles", sc.TwoCycles)
		if err := stab.Write(os.Stdout); err != nil {
			return err
		}
		if verbose {
			fmt.Printf("symmetry classes: %d (of %d configurations)\n", qs.QuotientSize(), sc.Configs)
		}
	}
	return nil
}

// runAnalytic is the -analytic path: ST quantities (fixed points,
// temporal 2-cycles, Garden-of-Eden counts) from the transfer-matrix
// engine, with no phase-space — or even space — construction, so n is
// bounded only by the O(log n) jump. Counts too wide for a table cell are
// abbreviated to their leading digits plus the exact digit count.
func runAnalytic(n, r int, ruleSpec, spSpec, dot string, noMemory, quotient bool) error {
	switch {
	case dot != "":
		return fmt.Errorf("-dot draws the enumerated phase space and is not supported with -analytic")
	case quotient:
		return fmt.Errorf("-quotient enumerates symmetry classes; -analytic does not enumerate at all (pick one)")
	case noMemory:
		return fmt.Errorf("-memoryless windows are not contiguous-with-center; -analytic needs the full [i-r..i+r] window")
	case spSpec != "ring":
		return fmt.Errorf("-analytic supports ring spaces only, got %q", spSpec)
	}
	rl, err := parseRule(ruleSpec, r)
	if err != nil {
		return err
	}
	c, err := phasespace.AnalyticCensusAt(rl, r, uint64(n))
	if err != nil {
		return err
	}
	fmt.Printf("# %s on ring(n=%d, r=%d)\n\n== analytic census (transfer matrix) ==\n", rl.Name(), n, r)
	tab := render.NewTable("quantity", "value")
	tab.AddRow("configurations", abbrevBig(c.Configs))
	tab.AddRow("fixed points", abbrevBig(c.FixedPoints))
	tab.AddRow("temporal 2-cycles", abbrevBig(c.TwoCycles))
	tab.AddRow("2-cycle states", abbrevBig(c.TwoCycleStates))
	tab.AddRow("garden-of-eden states", abbrevBig(c.GardenOfEden))
	tab.AddRow("states with preimage", abbrevBig(c.WithPreimage))
	tab.AddRow("recurrence orders (fp/pair/goe)",
		fmt.Sprintf("%d/%d/%d", c.Orders[0], c.Orders[1], c.Orders[2]))
	return tab.Write(os.Stdout)
}

// abbrevBig renders x in full up to 32 digits, else leading digits plus
// the exact decimal length (the count itself stays exact in memory; only
// the display truncates).
func abbrevBig(x *big.Int) string {
	s := x.String()
	if len(s) <= 32 {
		return s
	}
	return fmt.Sprintf("%s… (%d digits)", s[:12], len(s))
}

func parseSpace(spec string, n, r int) (space.Space, error) {
	switch {
	case spec == "ring":
		return space.Ring(n, r), nil
	case spec == "line":
		return space.Line(n, r), nil
	case spec == "complete":
		return space.CompleteGraph(n), nil
	case strings.HasPrefix(spec, "hypercube:"):
		d, err := strconv.Atoi(strings.TrimPrefix(spec, "hypercube:"))
		if err != nil {
			return nil, fmt.Errorf("bad hypercube spec %q", spec)
		}
		return space.Hypercube(d), nil
	case strings.HasPrefix(spec, "torus:"):
		var w, h int
		if _, err := fmt.Sscanf(strings.TrimPrefix(spec, "torus:"), "%dx%d", &w, &h); err != nil {
			return nil, fmt.Errorf("bad torus spec %q", spec)
		}
		return space.Torus(w, h), nil
	case strings.HasPrefix(spec, "graph:"):
		parts := strings.Split(strings.TrimPrefix(spec, "graph:"), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad graph spec %q: want graph:regular:<d>:<seed> or graph:powerlaw:<m>:<seed>", spec)
		}
		param, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad graph spec %q: parameter %q is not an integer", spec, parts[1])
		}
		seed, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad graph spec %q: seed %q is not an integer", spec, parts[2])
		}
		switch parts[0] {
		case "regular":
			return space.RandomRegular(n, param, seed)
		case "powerlaw":
			return space.PowerLaw(n, param, seed)
		default:
			return nil, fmt.Errorf("bad graph spec %q: unknown family %q (want regular or powerlaw)", spec, parts[0])
		}
	default:
		return nil, fmt.Errorf("unknown space %q", spec)
	}
}

func parseRule(spec string, r int) (rule.Rule, error) {
	switch {
	case spec == "majority":
		return rule.Majority(r), nil
	case spec == "xor":
		return rule.XOR{}, nil
	case strings.HasPrefix(spec, "threshold:"):
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "threshold:"))
		if err != nil {
			return nil, fmt.Errorf("bad threshold spec %q", spec)
		}
		return rule.Threshold{K: k}, nil
	case strings.HasPrefix(spec, "eca:"):
		code, err := strconv.Atoi(strings.TrimPrefix(spec, "eca:"))
		if err != nil || code < 0 || code > 255 {
			return nil, fmt.Errorf("bad elementary rule spec %q", spec)
		}
		return rule.Elementary(uint8(code)), nil
	default:
		return nil, fmt.Errorf("unknown rule %q", spec)
	}
}
