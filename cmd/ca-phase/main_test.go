package main

import (
	"context"

	"io"
	"os"
	"repro/internal/phasespace"
	"testing"
)

func TestParseSpace(t *testing.T) {
	cases := []struct {
		spec    string
		wantN   int
		wantErr bool
	}{
		{"ring", 8, false},
		{"line", 8, false},
		{"complete", 8, false},
		{"hypercube:3", 8, false},
		{"torus:4x3", 12, false},
		{"hypercube:x", 0, true},
		{"torus:4", 0, true},
		{"nope", 0, true},
	}
	for _, c := range cases {
		sp, err := parseSpace(c.spec, 8, 1)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseSpace(%q) accepted", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSpace(%q): %v", c.spec, err)
			continue
		}
		if sp.N() != c.wantN {
			t.Errorf("parseSpace(%q).N() = %d, want %d", c.spec, sp.N(), c.wantN)
		}
	}
}

func TestParseRule(t *testing.T) {
	if r, err := parseRule("majority", 2); err != nil || r.Name() != "threshold(k=3)" {
		t.Errorf("majority r=2: %v %v", r, err)
	}
	if _, err := parseRule("threshold:2", 1); err != nil {
		t.Errorf("threshold:2: %v", err)
	}
	if _, err := parseRule("eca:110", 1); err != nil {
		t.Errorf("eca:110: %v", err)
	}
	for _, bad := range []string{"eca:300", "eca:x", "threshold:x", "bogus"} {
		if _, err := parseRule(bad, 1); err == nil {
			t.Errorf("parseRule(%q) accepted", bad)
		}
	}
}

func TestRunSmoke(t *testing.T) {
	// Full analysis path on a tiny automaton (stdout noise is acceptable in
	// tests; correctness of the numbers is covered by the phasespace suite).
	ctx := context.Background()
	if err := run(ctx, 4, 1, "majority", "ring", "", false, false, 0, "", false, "", false, false, phasespace.StrategyAuto, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, 4, 1, "xor", "ring", "", true, true, 2, "", false, "", false, false, phasespace.StrategyAuto, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, 2, 1, "xor", "complete", "sequential", false, false, 1, "", false, "", false, false, phasespace.StrategyAuto, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, 4, 1, "majority", "ring", "bogus", false, false, 0, "", false, "", false, false, phasespace.StrategyAuto, 0); err == nil {
		t.Fatal("bogus dot mode accepted")
	}
	if err := run(ctx, 4, 1, "majority", "ring", "", false, false, 0, "", false, "explode:1", false, false, phasespace.StrategyAuto, 0); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

// TestRunSmokeCheckpointed exercises the checkpointed analysis path end
// to end, including the sequential .seq sidecar checkpoint.
func TestRunSmokeCheckpointed(t *testing.T) {
	ckpt := t.TempDir() + "/phase.ckpt.gz"
	ctx := context.Background()
	if err := run(ctx, 12, 1, "majority", "ring", "", false, false, 2, ckpt, false, "", false, false, phasespace.StrategyAuto, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, 12, 1, "majority", "ring", "", false, false, 2, ckpt, true, "", false, false, phasespace.StrategyAuto, 0); err != nil {
		t.Fatalf("resume over a complete checkpoint failed: %v", err)
	}
}

// captureRun runs the analysis with stdout redirected and returns the
// printed report.
func captureRun(t *testing.T, quotient bool, n int, rule string, workers int) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), n, 1, rule, "ring", "", false, false, workers, "", false, "", false, quotient, phasespace.StrategyAuto, 0)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run(quotient=%v, n=%d, %s): %v", quotient, n, rule, runErr)
	}
	return string(out)
}

// TestQuotientOutputMatchesRaw: the -quotient report must be byte-identical
// to the raw report (both census tables) — the CLI-level form of the
// orbit-weighting differential.
func TestQuotientOutputMatchesRaw(t *testing.T) {
	for _, rule := range []string{"majority", "threshold:1", "eca:232"} {
		for _, workers := range []int{1, 4} {
			raw := captureRun(t, false, 12, rule, workers)
			quot := captureRun(t, true, 12, rule, workers)
			if raw != quot {
				t.Errorf("rule %s workers=%d: -quotient output differs from raw:\n--- raw ---\n%s--- quotient ---\n%s", rule, workers, raw, quot)
			}
		}
	}
}

// TestQuotientRunRejections: -quotient with an unsupported automaton or
// DOT export must error, not panic.
func TestQuotientRunRejections(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, 10, 1, "xor", "ring", "", false, false, 1, "", false, "", false, true, phasespace.StrategyAuto, 0); err == nil {
		t.Fatal("-quotient accepted a non-threshold rule")
	}
	if err := run(ctx, 10, 1, "majority", "line", "", false, false, 1, "", false, "", false, true, phasespace.StrategyAuto, 0); err == nil {
		t.Fatal("-quotient accepted a non-circulant space")
	}
	if err := run(ctx, 10, 1, "majority", "ring", "parallel", false, false, 1, "", false, "", false, true, phasespace.StrategyAuto, 0); err == nil {
		t.Fatal("-quotient accepted -dot export")
	}
}
