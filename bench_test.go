// Benchmark harness: one testing.B benchmark per experiment in DESIGN.md's
// per-experiment index (E01–E27). Each benchmark regenerates the data
// behind the corresponding EXPERIMENTS.md row/series and fails fast if the
// paper-predicted shape breaks (who cycles, who converges, who wins), so
// `go test -bench=. -benchmem` doubles as the reproduction run.
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/async"
	"repro/internal/automaton"
	"repro/internal/bootstrap"
	"repro/internal/config"
	"repro/internal/debruijn"
	"repro/internal/density"
	"repro/internal/energy"
	"repro/internal/interleave"
	"repro/internal/phasespace"
	rt "repro/internal/runtime"
	"repro/internal/rule"
	"repro/internal/sds"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/threshnet"
	"repro/internal/transfer"
	"repro/internal/update"
	"repro/internal/verify"
	"repro/internal/wolfram"
)

func majRing(b *testing.B, n, r int) *automaton.Automaton {
	b.Helper()
	return automaton.MustNew(space.Ring(n, r), rule.Majority(r))
}

func xorPair() *automaton.Automaton {
	return automaton.MustNew(space.CompleteGraph(2), rule.XOR{})
}

// E01 / Fig 1(a): full phase space of the parallel 2-node XOR CA.
func BenchmarkE01_Fig1aParallelXOR(b *testing.B) {
	a := xorPair()
	for i := 0; i < b.N; i++ {
		p := phasespace.BuildParallel(a)
		c := p.TakeCensus()
		if c.FixedPoints != 1 || c.ProperCycles != 0 || c.GardenOfEden != 2 {
			b.Fatalf("Fig 1(a) shape broken: %+v", c)
		}
	}
}

// E02 / Fig 1(b): sequential phase space of the 2-node XOR CA.
func BenchmarkE02_Fig1bSequentialXOR(b *testing.B) {
	a := xorPair()
	for i := 0; i < b.N; i++ {
		s := phasespace.BuildSequential(a)
		if len(s.PseudoFixedPoints()) != 2 || len(s.TwoCycles()) != 2 {
			b.Fatal("Fig 1(b) shape broken")
		}
		if _, ok := s.Acyclic(); ok {
			b.Fatal("sequential XOR should cycle")
		}
	}
}

// E03 / Lemma 1(i): enumerate all parallel MAJORITY cycles on even rings.
func BenchmarkE03_Lemma1iParallelCycles(b *testing.B) {
	a := majRing(b, 14, 1)
	for i := 0; i < b.N; i++ {
		p := phasespace.BuildParallel(a)
		pcs := p.ProperCycles()
		if len(pcs) == 0 {
			b.Fatal("no parallel 2-cycles found")
		}
		for _, c := range pcs {
			if len(c) != 2 {
				b.Fatalf("period %d cycle", len(c))
			}
		}
	}
}

// E04 / Lemma 1(ii): sequential MAJORITY phase space is acyclic.
func BenchmarkE04_Lemma1iiSequentialAcyclic(b *testing.B) {
	a := majRing(b, 12, 1)
	s := phasespace.BuildSequential(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Acyclic(); !ok {
			b.Fatal("sequential MAJORITY cycled")
		}
	}
}

// E05 / Theorem 1: every monotone symmetric r=1 rule is sequentially acyclic.
func BenchmarkE05_Theorem1AllThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, th := range rule.AllThresholds(3) {
			a := automaton.MustNew(space.Ring(10, 1), th)
			if _, ok := phasespace.BuildSequential(a).Acyclic(); !ok {
				b.Fatalf("threshold k=%d cycled", th.K)
			}
		}
	}
}

// E06 / Lemma 2: the radius-2 dichotomy.
func BenchmarkE06_Lemma2Radius2(b *testing.B) {
	par := majRing(b, 12, 2)
	seq := majRing(b, 10, 2)
	for i := 0; i < b.N; i++ {
		if len(phasespace.BuildParallel(par).ProperCycles()) == 0 {
			b.Fatal("no parallel r=2 cycles")
		}
		if _, ok := phasespace.BuildSequential(seq).Acyclic(); !ok {
			b.Fatal("sequential r=2 cycled")
		}
	}
}

// E07 / Corollary 1: block 2-cycles exist for every radius.
func BenchmarkE07_Corollary1AllRadii(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for r := 1; r <= 4; r++ {
			n := 2 * r * 8
			a := automaton.MustNew(space.Ring(n, r), rule.Majority(r))
			if !a.IsTwoCycle(config.AlternatingBlocks(n, r, 0)) {
				b.Fatalf("r=%d: block configuration not a 2-cycle", r)
			}
		}
	}
}

// E08 / Proposition 1: orbits end in FPs or 2-cycles; exhaustive small n.
func BenchmarkE08_Prop1Convergence(b *testing.B) {
	a := majRing(b, 14, 1)
	for i := 0; i < b.N; i++ {
		tally := stats.NewOutcomeTally()
		config.Space(14, func(_ uint64, c config.Config) {
			res := a.Converge(c.Clone(), 100)
			tally.Record(res.Period, res.Transient)
		})
		if tally.Longer != 0 || tally.Unresolved != 0 {
			b.Fatalf("Proposition 1 violated: %s", tally)
		}
	}
}

// E09 / Corollary 1 on bipartite spaces: tori, hypercubes, even circulants.
func BenchmarkE09_BipartiteTwoCycles(b *testing.B) {
	spaces := []space.Space{
		space.Torus(4, 4), space.Hypercube(4), space.Circulant(12, 1, 3),
	}
	for i := 0; i < b.N; i++ {
		for _, sp := range spaces {
			part, ok := space.Bipartition(sp)
			if !ok {
				b.Fatalf("%s not bipartite", sp.Name())
			}
			deg, _ := space.Regular(sp)
			a := automaton.MustNew(sp, rule.StrictMajorityOf(deg))
			if !a.IsTwoCycle(config.FromParts(part)) {
				b.Fatalf("%s: bipartition not a 2-cycle", sp.Name())
			}
		}
	}
}

// E10 / §1.1: interleaving granularity on the register VM.
func BenchmarkE10_InterleavingGranularity(b *testing.B) {
	progs := []interleave.Program{interleave.IncrementProgram(1), interleave.IncrementProgram(2)}
	for i := 0; i < b.N; i++ {
		atomic := interleave.AtomicOrders(0, progs)
		machine := interleave.Interleavings(0, progs)
		if len(atomic) != 1 || len(machine) != 3 {
			b.Fatalf("granularity shape: atomic %v machine %v", atomic, machine)
		}
	}
}

// E11 / §5: micro-op interleavings recover the parallel step; atomic do not.
func BenchmarkE11_MicroOpRecovery(b *testing.B) {
	a := majRing(b, 5, 1)
	start := config.Alternating(5, 0)
	for i := 0; i < b.N; i++ {
		rep, err := interleave.CheckRecovery(a, start)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.MicroReaches || rep.AtomicReaches {
			b.Fatalf("recovery shape broken: %+v", rep)
		}
	}
}

// E12 / §4: ACA subsumes both parallel CA and SCA.
func BenchmarkE12_ACASubsumption(b *testing.B) {
	n := 10
	a := majRing(b, n, 1)
	x0 := config.Alternating(n, 0)
	order := make([]int, 3*n)
	rng := rand.New(rand.NewSource(1))
	for i := range order {
		order[i] = rng.Intn(n)
	}
	for i := 0; i < b.N; i++ {
		// Lockstep ACA ≡ parallel: 2 rounds return to start.
		if !async.RunLockstep(a, x0, 2).Equal(x0) {
			b.Fatal("lockstep ACA broke the 2-cycle")
		}
		// Serial ACA ≡ SCA.
		want := x0.Clone()
		a.RunSequential(want, update.MustSequence(n, order), len(order))
		if !async.RunSerial(a, x0, order).Equal(want) {
			b.Fatal("serial ACA diverged from SCA")
		}
	}
}

// E13 / ref [19]: census of the parallel MAJORITY phase space.
func BenchmarkE13_PhaseSpaceCensus(b *testing.B) {
	a := majRing(b, 16, 1)
	for i := 0; i < b.N; i++ {
		c := phasespace.BuildParallel(a).TakeCensus()
		if c.ProperCycles == 0 || c.CyclesWithIncomingTransients != 0 {
			b.Fatalf("census shape: %+v", c)
		}
	}
}

// E14 / fairness: random-fair SCA convergence time.
func BenchmarkE14_FairnessConvergence(b *testing.B) {
	n := 64
	a := majRing(b, n, 1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < b.N; i++ {
		c := config.Random(rng, n, 0.5)
		sched := update.NewRandomFair(n, int64(i))
		if _, ok := a.ConvergeSequential(c, sched, 100*n*n); !ok {
			b.Fatal("fair SCA did not converge")
		}
	}
}

// E15 / §4 non-homogeneous: mixed thresholds stay acyclic; one XOR node
// breaks acyclicity.
func BenchmarkE15_NonHomogeneous(b *testing.B) {
	n := 9
	sp := space.Ring(n, 1)
	mixed := make([]rule.Rule, n)
	for i := range mixed {
		mixed[i] = rule.Threshold{K: 1 + i%3}
	}
	withXOR := append([]rule.Rule(nil), mixed...)
	withXOR[0] = rule.XOR{}
	aMixed, err := automaton.NewNonHomogeneous(sp, mixed)
	if err != nil {
		b.Fatal(err)
	}
	aXOR, err := automaton.NewNonHomogeneous(sp, withXOR)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := phasespace.BuildSequential(aMixed).Acyclic(); !ok {
			b.Fatal("mixed thresholds cycled sequentially")
		}
		if _, ok := phasespace.BuildSequential(aXOR).Acyclic(); ok {
			b.Fatal("XOR-contaminated ring unexpectedly acyclic")
		}
	}
}

// E16 / §4 SDS: distinct maps bounded by acyclic orientations; GoE census.
func BenchmarkE16_SDSEquivalence(b *testing.B) {
	sp := space.Ring(6, 1)
	a := automaton.MustNew(sp, rule.Majority(1))
	for i := 0; i < b.N; i++ {
		count, _ := sds.DistinctMaps(a)
		if uint64(count) > sds.AcyclicOrientations(sp) {
			b.Fatal("ref [6] bound violated")
		}
		s := sds.MustNew(a, []int{0, 1, 2, 3, 4, 5})
		if len(s.GardenOfEden()) == 0 {
			b.Fatal("no Garden-of-Eden states")
		}
	}
}

// E17 / energy: Lyapunov descent along sequential runs.
func BenchmarkE17_EnergyLyapunov(b *testing.B) {
	n := 128
	a := majRing(b, n, 1)
	nw, err := energy.FromAutomaton(a)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := config.Random(rng, n, 0.5)
		sched := update.NewRandomFair(n, int64(i))
		prev := nw.Sequential2E(c)
		for step := 0; step < 4*n; step++ {
			if a.UpdateNode(c, sched.Next()) {
				cur := nw.Sequential2E(c)
				if cur >= prev {
					b.Fatal("energy failed to decrease")
				}
				prev = cur
			}
		}
	}
}

// E18 / HPC scaling: packed kernel throughput (see also BenchmarkSim* in
// internal/sim for the scalar-vs-packed ablation).
func BenchmarkE18_PackedScaling(b *testing.B) {
	n := 1 << 22
	rng := rand.New(rand.NewSource(1))
	s := sim.NewMajorityRing(n, 1, config.Random(rng, n, 0.5))
	b.SetBytes(int64(n / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepParallel(0)
	}
}

// E19 / extension: the 256-rule census separating Theorem 1's hypotheses.
func BenchmarkE19_ECACensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := wolfram.TakeCensus(6)
		if len(c.Thresholds) != 5 || len(c.MonotoneButCyclic) == 0 {
			b.Fatalf("census shape: thresholds %v, monotone-but-cyclic %v",
				c.Thresholds, c.MonotoneButCyclic)
		}
	}
}

// E20 / extension: block-sequential interpolation.
func BenchmarkE20_BlockSequential(b *testing.B) {
	n := 12
	a := majRing(b, n, 1)
	for i := 0; i < b.N; i++ {
		if p := a.BlockMaxPeriod(automaton.ContiguousBlocks(n, 1)); p != 1 {
			b.Fatalf("sequential sweep period %d", p)
		}
		if p := a.BlockMaxPeriod(automaton.ContiguousBlocks(n, n)); p != 2 {
			b.Fatalf("parallel block period %d", p)
		}
		if p := a.BlockMaxPeriod(automaton.ParityBlocks(n)); p != 1 {
			b.Fatalf("parity sweep period %d", p)
		}
	}
}

// E21 / extension: packed 2-D torus kernel — checkerboard 2-cycle at scale.
func BenchmarkE21_TorusAtScale(b *testing.B) {
	sp := space.Torus(256, 256)
	part, ok := space.Bipartition(sp)
	if !ok {
		b.Fatal("torus not bipartite")
	}
	x0 := config.FromParts(part)
	s := sim.NewMajorityTorus(256, 256, x0)
	b.SetBytes(256 * 256 / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// E22 / extension: weighted threshold networks + Hopfield recall.
func BenchmarkE22_HopfieldRecall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 96
	h := threshnet.NewHopfield(n)
	patterns := make([]threshnet.Pattern, 4)
	for i := range patterns {
		patterns[i] = threshnet.RandomPattern(rng, n)
		h.Store(patterns[i])
	}
	probe := patterns[0].Corrupt(rng, n/10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, ok := h.Recall(probe, int64(i), 200)
		if !ok || got.Hamming(patterns[0]) != 0 {
			b.Fatal("recall failed")
		}
	}
}

// E23 / extension: density classification — GKL vs threshold majority.
func BenchmarkE23_DensityClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gkl := density.Benchmark("gkl", density.GKL(), 3, 149, 20, int64(i), 600)
		maj := density.Benchmark("maj", rule.Majority(1), 1, 149, 20, int64(i), 600)
		if gkl.Accuracy() <= maj.Accuracy() {
			b.Fatalf("GKL %.2f did not beat majority %.2f", gkl.Accuracy(), maj.Accuracy())
		}
	}
}

// E24 / extension: light-cone propagation bound.
func BenchmarkE24_LightCone(b *testing.B) {
	n := 64
	a := automaton.MustNew(space.Ring(n, 2), rule.XOR{})
	x0 := config.New(n)
	for i := 0; i < b.N; i++ {
		trace := a.LightCone(x0, n/2, 12)
		if automaton.ConeSpeed(trace) != 2 {
			b.Fatal("additive cone speed should equal the radius")
		}
	}
}

// E25 / extension: bootstrap percolation confluence + threshold sweep.
func BenchmarkE25_BootstrapPercolation(b *testing.B) {
	sp := space.Torus(24, 24)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		seeds := config.Random(rng, sp.N(), 0.1)
		final := bootstrap.Closure(sp, 2, seeds)
		if final.Ones() < seeds.Ones() {
			b.Fatal("closure shrank the seed set")
		}
	}
}

// E26 / extension: de Bruijn surjectivity/injectivity census.
func BenchmarkE26_DeBruijnCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sur, inj := 0, 0
		for code := 0; code < 256; code++ {
			g := debruijn.MustNew(rule.Elementary(uint8(code)), 1)
			s, j := g.Classify()
			if s {
				sur++
			}
			if j {
				inj++
			}
		}
		if sur != 30 || inj != 6 {
			b.Fatalf("census %d/%d, want 30/6", sur, inj)
		}
	}
}

// E27: the analytic transfer-matrix census — exact MAJ-3 ST counts at
// n = 10^6 (a 208,988-digit fixed-point count), pinned to enumeration at
// an overlapping size inside the same timed body.
func BenchmarkE27_AnalyticCensus(b *testing.B) {
	eng, err := transfer.New(rule.Majority(1), 1)
	if err != nil {
		b.Fatal(err)
	}
	a := majRing(b, 14, 1)
	want := phasespace.BuildParallel(a).TakeCensus()
	for i := 0; i < b.N; i++ {
		small, err := eng.TakeCensus(14)
		if err != nil {
			b.Fatal(err)
		}
		if small.FixedPoints.Int64() != int64(want.FixedPoints) ||
			small.GardenOfEden.Uint64() != want.GardenOfEden {
			b.Fatalf("analytic census diverges from enumeration: %+v vs %+v", small, want)
		}
		big, err := eng.TakeCensus(1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if len(big.FixedPoints.String()) != 208988 {
			b.Fatalf("FP(10^6) has %d digits, want 208988", len(big.FixedPoints.String()))
		}
	}
}

// Ablation: dense phase-space classification vs orbit-by-orbit Brent.
func BenchmarkAblation_DenseVsBrent(b *testing.B) {
	a := majRing(b, 14, 1)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := phasespace.BuildParallel(a)
			if p.MaxPeriod() != 2 {
				b.Fatal("bad max period")
			}
		}
	})
	b.Run("brent", func(b *testing.B) {
		// One walker reused across the whole sweep: the orbit loop itself is
		// allocation-free (see TestOrbitWalkerAllocFree), so this measures
		// cycle detection, not garbage.
		w := a.NewOrbitWalker()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			maxPeriod := 0
			config.Space(14, func(_ uint64, c config.Config) {
				res := w.Converge(c, 100)
				if res.Period > maxPeriod {
					maxPeriod = res.Period
				}
			})
			if maxPeriod != 2 {
				b.Fatal("bad max period")
			}
		}
	})
}

// Ablation: worker scaling of the fused packed ring kernel (the production
// stepping path; internal/sim fuses the cross-word rotation into the combine
// loop, so each worker streams its word range once). On a single-core box
// the curve is flat — the interesting comparison is this kernel's absolute
// ns/op against the per-node automaton path it replaced.
func BenchmarkAblation_StepWorkers(b *testing.B) {
	n := 1 << 18
	rng := rand.New(rand.NewSource(1))
	s := sim.NewMajorityRing(n, 2, config.Random(rng, n, 0.5))
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(n / 8))
			for i := 0; i < b.N; i++ {
				s.StepParallel(workers)
			}
		})
	}
}

// Ablation: bit-sliced batch kernel vs scalar reference for full parallel
// phase-space construction (radius-1 MAJORITY ring, n = 20, 2^20 configs).
// The packed path must win by ≥ 4× for the configuration-parallel
// enumeration to pay for its complexity.
func BenchmarkAblation_PackedVsScalarBuild(b *testing.B) {
	a := majRing(b, 20, 1)
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := phasespace.BuildParallelWorkers(a, 1)
			if p.Size() != 1<<20 {
				b.Fatal("bad size")
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := phasespace.BuildParallelScalar(a)
			if p.Size() != 1<<20 {
				b.Fatal("bad size")
			}
		}
	})
}

// Ablation: worker scaling of the sharded parallel builder. The generic
// (non-batchable) XOR rule isolates the sharding lever from the batch
// kernel.
func BenchmarkAblation_BuildWorkers(b *testing.B) {
	a := automaton.MustNew(space.Ring(18, 1), rule.XOR{})
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := phasespace.BuildParallelWorkers(a, workers)
				if p.Size() != 1<<18 {
					b.Fatal("bad size")
				}
			}
		})
	}
}

// Ablation (tentpole): symmetry-quotient phase-space engine vs the raw
// enumeration, full pipeline (build + cycle classification + census) on
// the radius-1 MAJORITY ring. The quotient walks only the ~2^n/2n dihedral
// symmetry classes and lifts the census back to full-space counts by orbit
// weighting, so at n = 22 it must be ≥ 5× faster and allocate ≥ 10× less
// than raw for the engine to pay for itself (EXPERIMENTS.md appendix A;
// the byte-identical-census differential lives in
// internal/phasespace/quotient_test.go and the race CI job).
func BenchmarkAblation_QuotientVsRawParallel(b *testing.B) {
	for _, n := range []int{20, 22} {
		a := majRing(b, n, 1)
		b.Run(fmt.Sprintf("raw/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := phasespace.BuildParallelWorkers(a, 1)
				if err := p.ClassifyCtx(context.Background()); err != nil {
					b.Fatal(err)
				}
				if c := p.TakeCensus(); c.Configs != uint64(1)<<uint(n) || c.MaxPeriod != 2 {
					b.Fatalf("census shape: %+v", c)
				}
			}
		})
		b.Run(fmt.Sprintf("quotient/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q, err := phasespace.BuildQuotientParallelCtx(context.Background(), a, 1)
				if err != nil {
					b.Fatal(err)
				}
				if err := q.ClassifyCtx(context.Background()); err != nil {
					b.Fatal(err)
				}
				if c := q.TakeCensus(); c.Configs != uint64(1)<<uint(n) || c.MaxPeriod != 2 {
					b.Fatalf("census shape: %+v", c)
				}
			}
		})
	}
}

// Ablation: the same raw-vs-quotient comparison for the sequential
// (node-by-node) phase space, whose raw build writes n successors per
// configuration. Raw is capped at MaxSequentialNodes = 24; the quotient
// extends the paired range and MaxQuotientSequentialNodes = 28 beyond it.
func BenchmarkAblation_QuotientVsRawSequential(b *testing.B) {
	a18, a20 := majRing(b, 18, 1), majRing(b, 20, 1)
	for _, tc := range []struct {
		n int
		a *automaton.Automaton
	}{{18, a18}, {20, a20}} {
		tc := tc
		b.Run(fmt.Sprintf("raw/n=%d", tc.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := phasespace.BuildSequentialWorkers(tc.a, 1)
				if _, acyclic := s.Acyclic(); !acyclic {
					b.Fatal("threshold SCA must be acyclic")
				}
			}
		})
		b.Run(fmt.Sprintf("quotient/n=%d", tc.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q, err := phasespace.BuildQuotientSequentialCtx(context.Background(), tc.a, 1)
				if err != nil {
					b.Fatal(err)
				}
				if c := q.TakeCensus(); !c.Acyclic {
					b.Fatal("threshold SCA must be acyclic")
				}
			}
		})
	}
}

// Ablation: quotient-only territory — ring sizes where the symmetry
// quotient beats even the streaming raw classifier by walking only ~2^n/2n
// symmetry classes. n = 28 enumerates ~4.8M classes standing for 2^28
// configurations.
func BenchmarkAblation_QuotientBeyondRawCap(b *testing.B) {
	a := majRing(b, 28, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := phasespace.BuildQuotientParallelCtx(context.Background(), a, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := q.ClassifyCtx(context.Background()); err != nil {
			b.Fatal(err)
		}
		c := q.TakeCensus()
		if c.Configs != 1<<28 || c.FixedPoints == 0 || c.MaxPeriod != 2 {
			b.Fatalf("census shape: %+v", c)
		}
	}
}

// Ablation: the analytic census engine's one-time cost — building the
// window-transition transfer matrices and deriving the proven linear
// recurrences (fixed-point trace, pair trace, GoE subset-automaton walk)
// for MAJ-3. Everything after this is O(log n) per query.
func BenchmarkAblation_TransferRecurrence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, err := transfer.New(rule.Majority(1), 1)
		if err != nil {
			b.Fatal(err)
		}
		c, err := eng.TakeCensus(64)
		if err != nil {
			b.Fatal(err)
		}
		if c.FixedPoints.Sign() <= 0 {
			b.Fatalf("census shape: %+v", c)
		}
	}
}

// Ablation: the square-and-multiply recurrence jump alone, on a shared
// engine, at ring sizes 2^10..2^20. The work is O(log n) polynomial
// arithmetic on big integers whose size grows with n, so the scaling is
// quasi-linear in the answer's digit count, not in n's magnitude as a
// ring size.
func BenchmarkAblation_TransferJump(b *testing.B) {
	eng, err := transfer.New(rule.Majority(1), 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.TakeCensus(64); err != nil { // derive outside the timer
		b.Fatal(err)
	}
	for exp := 10; exp <= 20; exp += 2 {
		n := uint64(1) << uint(exp)
		b.Run(fmt.Sprintf("n=2^%d", exp), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := eng.TakeCensus(n)
				if err != nil {
					b.Fatal(err)
				}
				if c.FixedPoints.Sign() <= 0 || c.GardenOfEden.Sign() <= 0 {
					b.Fatalf("census shape at n=%d: %+v", n, c)
				}
			}
		})
	}
}

// Ablation: enumeration vs analytic on the sizes both can serve — the
// crossover the -analytic flags exploit. Enumeration is Θ(2^n) per
// census; the analytic query (recurrences pre-derived, as in any warm
// process) is microseconds at every n.
func BenchmarkAblation_TransferVsQuotientCrossover(b *testing.B) {
	eng, err := transfer.New(rule.Majority(1), 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.TakeCensus(64); err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{12, 16, 20} {
		a := majRing(b, n, 1)
		b.Run(fmt.Sprintf("enumerate/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := phasespace.BuildParallelWorkers(a, 1).TakeCensus()
				if c.FixedPoints == 0 {
					b.Fatalf("census shape: %+v", c)
				}
			}
		})
		b.Run(fmt.Sprintf("analytic/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := eng.TakeCensus(uint64(n))
				if err != nil {
					b.Fatal(err)
				}
				if c.FixedPoints.Sign() <= 0 {
					b.Fatalf("census shape: %+v", c)
				}
			}
		})
	}
}

// E29 / extension: graph-ensemble censuses through the CSR graph kernel —
// one random-regular sample's full dichotomy check (parallel period ≤ 2,
// sequential acyclic), the E29 row regenerated.
func BenchmarkE29_GraphEnsembleCensus(b *testing.B) {
	sp, err := space.RandomRegular(14, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	a := automaton.MustNew(sp, rule.Threshold{K: 2})
	for i := 0; i < b.N; i++ {
		c := phasespace.BuildParallelWorkers(a, 1).TakeCensus()
		if c.MaxPeriod > 2 {
			b.Fatalf("census shape: %+v", c)
		}
		if _, ok := phasespace.BuildSequential(a).Acyclic(); !ok {
			b.Fatal("sequential threshold CA cycled")
		}
	}
}

// Ablation (tentpole): the CSR bit-sliced graph batch kernel vs the scalar
// stepper for full successor-map construction beyond the ring — majority on
// the hypercube Q_4 and threshold-2 on a 16-node random-regular sample.
// Each op computes all 2^16 successors; the batch path steps 64
// configurations per word and must deliver ≥ 10× the scalar configs/sec
// (the committed BENCH baseline and CI -compare gate pin the ratio).
func BenchmarkAblation_GraphBatch(b *testing.B) {
	reg, err := space.RandomRegular(16, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		sp   space.Space
		k    int
	}{
		{"q4-majority", space.Hypercube(4), 3},
		{"regular16-thr2", reg, 2},
	}
	for _, tc := range cases {
		tc := tc
		n := tc.sp.N()
		size := uint64(1) << uint(n)
		a := automaton.MustNew(tc.sp, rule.Threshold{K: tc.k})
		nbhd := make([][]int, n)
		rules := make([]sim.GraphRule, n)
		for i := 0; i < n; i++ {
			nbhd[i] = tc.sp.Neighborhood(i)
			rules[i] = sim.GraphRule{K: tc.k}
		}
		gk, err := sim.NewGraphBatch(nbhd, rules)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("batch/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var out [64]uint64
			var sink uint64
			for i := 0; i < b.N; i++ {
				for base := uint64(0); base < size; base += 64 {
					gk.Succ64(base, &out)
					sink ^= out[0]
				}
			}
			_ = sink
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
		})
		b.Run("scalar/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			dst := config.New(n)
			var sink uint64
			for i := 0; i < b.N; i++ {
				config.Space(n, func(_ uint64, c config.Config) {
					a.Step(dst, c)
					sink ^= dst.Index()
				})
			}
			_ = sink
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
		})
	}
}

// Ablation: the hyperoctahedral quotient on Q_4 vs raw enumeration, full
// pipeline (build + census). B_4 has order 384 and folds the 65,536
// configurations to 402 orbit classes — a ~163× state and ~20× allocation
// reduction, the lever that matters when the successor table is the
// bottleneck. Canonicalization pays |B_4| group images per scanned config,
// so raw wall time stays comparable at d = 4; the census is byte-identical
// (pinned by internal/phasespace/hyperoctahedral_test.go and the C1-HC
// claim).
func BenchmarkAblation_HypercubeQuotient(b *testing.B) {
	a := automaton.MustNew(space.Hypercube(4), rule.Threshold{K: 3})
	b.Run("raw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := phasespace.BuildParallelWorkers(a, 1).TakeCensus()
			if c.Configs != 1<<16 || c.MaxPeriod != 2 {
				b.Fatalf("census shape: %+v", c)
			}
		}
	})
	b.Run("quotient", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q, err := phasespace.BuildHyperoctaParallelCtx(context.Background(), a, 1)
			if err != nil {
				b.Fatal(err)
			}
			if c := q.TakeCensus(); c.Configs != 1<<16 || c.MaxPeriod != 2 {
				b.Fatalf("census shape: %+v", c)
			}
		}
	})
}

// E28 / §5 + POR: the witness pipeline at a ring size whose schedule
// space (24!/2¹² ≈ 1.5e20) is far beyond enumeration — targeted sleep-set
// search, ddmin shrink, memoized atomic certification.
func BenchmarkE28_MicroPORWitness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		witness, shrunk, cex := verify.MicroPORWitness(12)
		if cex != nil {
			b.Fatalf("witness pipeline failed: %s", cex)
		}
		if len(witness) != 24 || len(shrunk) >= len(witness) {
			b.Fatalf("witness shape: %d ops, shrunk %d", len(witness), len(shrunk))
		}
	}
}

// Ablation: sleep-set/persistent-set partial-order reduction vs brute-force
// enumeration of the fetch/commit interleaving space (MAJORITY 6-ring,
// alternating start, all 12!/2⁶ ≈ 7.5e6 schedules on the brute side). Each
// sub-benchmark reports its explored schedule count as a custom metric;
// the committed BENCH baseline pins the ≥100× reduction alongside the
// timing gate.
func BenchmarkAblation_PORPrune(b *testing.B) {
	a := majRing(b, 6, 1)
	start := config.Alternating(6, 0)
	nodes := []int{0, 1, 2, 3, 4, 5}
	b.Run("brute", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			out, err := interleave.MicroOutcomes(a, start, nodes)
			if err != nil {
				b.Fatal(err)
			}
			total = 0
			for _, c := range out {
				total += c
			}
			if len(out) != 39 {
				b.Fatalf("outcome set size %d, want 39", len(out))
			}
		}
		b.ReportMetric(float64(total), "schedules/op")
	})
	b.Run("por", func(b *testing.B) {
		var explored uint64
		for i := 0; i < b.N; i++ {
			res, err := interleave.PORSearch(a, start, nodes, interleave.POROptions{})
			if err != nil {
				b.Fatal(err)
			}
			explored = res.Stats.Schedules
			if len(res.Outcomes) != 39 {
				b.Fatalf("outcome set size %d, want 39", len(res.Outcomes))
			}
			if res.Stats.Schedules*100 > 7484400 {
				b.Fatalf("POR explored %d schedules; prune factor below 100×", res.Stats.Schedules)
			}
		}
		b.ReportMetric(float64(explored), "schedules/op")
	})
}

// reportPeakHeap runs the benchmark loop with a background sampler polling
// runtime.ReadMemStats and reports the heap high-water mark above the
// pre-run baseline as a "peak-B" metric. B/op only counts cumulative
// allocation; peak-B is what distinguishes a streaming classifier (small
// live set, regenerated blocks) from a dense one (whole-table live set),
// so it is the metric the -mem-threshold compare gate watches. Sampling at
// 2ms misses sub-millisecond spikes, which is fine: the arrays that matter
// here live for the whole classification.
func reportPeakHeap(b *testing.B, fn func()) {
	b.Helper()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	var peak atomic.Uint64
	peak.Store(base)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				if v := s.HeapAlloc; v > peak.Load() {
					peak.Store(v)
				}
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	close(stop)
	<-done
	runtime.ReadMemStats(&ms)
	if v := ms.HeapAlloc; v > peak.Load() {
		peak.Store(v)
	}
	p := peak.Load()
	if p > base {
		p -= base
	} else {
		p = 0
	}
	b.ReportMetric(float64(p), "peak-B")
}

// Ablation (tentpole): table-free streaming classification vs the dense
// successor table on the full pipeline (build + cycles + census) at
// n = 26, the old MaxEnumNodes frontier. Dense materializes the 256 MiB
// uint32 table plus ~total*32 B of classifier arrays; streaming keeps only
// bitsets and a sparse cycle-id directory and regenerates successors from
// the batch kernel in 64-configuration blocks, so its peak-B high-water mark
// must come in ≥ 4× below dense (the acceptance gate EXPERIMENTS.md
// appendix B records; byte-identical output is pinned by
// internal/phasespace/stream_test.go and FuzzStreamVsDense).
func BenchmarkAblation_StreamVsDenseClassify(b *testing.B) {
	const n = 26
	a := majRing(b, n, 1)
	check := func(b *testing.B, p *phasespace.Parallel) {
		b.Helper()
		if c := p.TakeCensus(); c.Configs != uint64(1)<<uint(n) || c.MaxPeriod != 2 {
			b.Fatalf("census shape: %+v", c)
		}
	}
	b.Run(fmt.Sprintf("dense/n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		reportPeakHeap(b, func() {
			p, err := phasespace.BuildParallelOpts(context.Background(), a, phasespace.BuildOptions{
				Options:  rt.Options{Workers: 1},
				Strategy: phasespace.StrategyDense,
			})
			if err != nil {
				b.Fatal(err)
			}
			check(b, p)
		})
	})
	b.Run(fmt.Sprintf("stream/n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		reportPeakHeap(b, func() {
			p, err := phasespace.BuildParallelOpts(context.Background(), a, phasespace.BuildOptions{
				Options:  rt.Options{Workers: 1},
				Strategy: phasespace.StrategyStream,
			})
			if err != nil {
				b.Fatal(err)
			}
			check(b, p)
		})
	})
}

// Ablation: the same dense-vs-streaming memory comparison for the
// sequential (node-by-node) phase space at n = 22. Dense stores n uint32
// successors per configuration (~352 MiB); the flip-bitset mode exploits
// the Hamming-1 structure of single-node updates and stores one flip bit
// per (configuration, node) pair (~11 MiB), a 32× table compression that
// peak-B makes visible end to end.
func BenchmarkAblation_StreamVsDenseSequential(b *testing.B) {
	const n = 22
	a := majRing(b, n, 1)
	for _, tc := range []struct {
		name     string
		strategy phasespace.Strategy
	}{{"dense", phasespace.StrategyDense}, {"flip", phasespace.StrategyStream}} {
		tc := tc
		b.Run(fmt.Sprintf("%s/n=%d", tc.name, n), func(b *testing.B) {
			b.ReportAllocs()
			reportPeakHeap(b, func() {
				s, err := phasespace.BuildSequentialOpts(context.Background(), a, phasespace.BuildOptions{
					Options:  rt.Options{Workers: 1},
					Strategy: tc.strategy,
				})
				if err != nil {
					b.Fatal(err)
				}
				if c := s.TakeCensus(); !c.Acyclic {
					b.Fatal("threshold SCA must be acyclic")
				}
			})
		})
	}
}

// Ablation: streaming-only territory — an exact raw census at n = 28, past
// the dense classifier's practical envelope (a dense build would need
// ~8.6 GiB of live arrays; the label-free census sweeps stay in the
// hundreds of MiB, dominated by bitsets). This is the raw-space
// counterpart of
// BenchmarkAblation_QuotientBeyondRawCap: no symmetry assumption, any
// automaton the kernels can evaluate.
func BenchmarkAblation_StreamBeyondDenseCap(b *testing.B) {
	a := majRing(b, 28, 1)
	b.ReportAllocs()
	reportPeakHeap(b, func() {
		p, err := phasespace.BuildParallelOpts(context.Background(), a, phasespace.BuildOptions{
			Strategy: phasespace.StrategyStream,
		})
		if err != nil {
			b.Fatal(err)
		}
		c := p.TakeCensus()
		if c.Configs != 1<<28 || c.FixedPoints == 0 || c.MaxPeriod != 2 {
			b.Fatalf("census shape: %+v", c)
		}
	})
}
