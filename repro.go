package repro

import (
	"io"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/interleave"
	"repro/internal/phasespace"
	"repro/internal/render"
	"repro/internal/rule"
	"repro/internal/space"
	"repro/internal/update"
)

// Re-exported core types, so that typical users need only this package.
type (
	// Automaton couples a cellular space with local update rules.
	Automaton = automaton.Automaton
	// Config is a global Boolean configuration.
	Config = config.Config
	// Space is a finite cellular space (regular graph + neighborhoods).
	Space = space.Space
	// Rule is a Boolean local update rule.
	Rule = rule.Rule
	// Schedule drives sequential node updates.
	Schedule = update.Schedule
	// OrbitResult classifies an orbit's eventual behavior.
	OrbitResult = automaton.OrbitResult
	// Census summarizes a parallel phase space.
	Census = phasespace.Census
)

// Ring returns the 1-D cellular space on n nodes with circular boundary
// conditions and radius r — the paper's standard finite space.
func Ring(n, r int) Space { return space.Ring(n, r) }

// Line returns the bounded 1-D space on n nodes with radius r.
func Line(n, r int) Space { return space.Line(n, r) }

// Majority returns the MAJORITY rule of radius r (2r+1 inputs).
func Majority(r int) Rule { return rule.Majority(r) }

// Threshold returns the k-of-m symmetric threshold rule (arity-agnostic).
func Threshold(k int) Rule { return rule.Threshold{K: k} }

// XOR returns the parity rule.
func XOR() Rule { return rule.XOR{} }

// Elementary returns Wolfram elementary rule code (radius 1).
func Elementary(code uint8) Rule { return rule.Elementary(code) }

// New builds a homogeneous automaton over a space and rule.
func New(s Space, r Rule) (*Automaton, error) { return automaton.New(s, r) }

// MustNew is New that panics on error.
func MustNew(s Space, r Rule) *Automaton { return automaton.MustNew(s, r) }

// ParseConfig builds a configuration from a '0'/'1' string.
func ParseConfig(s string) (Config, error) { return config.Parse(s) }

// Alternating returns the 0101… configuration of Lemma 1(i)'s 2-cycle.
func Alternating(n int, phase uint8) Config { return config.Alternating(n, phase) }

// RoundRobin returns the canonical fair sequential schedule.
func RoundRobin(n int) Schedule { return update.NewRoundRobin(n) }

// RandomFair returns a seeded random schedule satisfying the paper's
// footnote-2 fairness condition with bound 2n−1.
func RandomFair(n int, seed int64) Schedule { return update.NewRandomFair(n, seed) }

// Converge iterates the parallel map from x0 and classifies the orbit
// (fixed point, cycle + period, or unresolved within maxSteps).
func Converge(a *Automaton, x0 Config, maxSteps int) OrbitResult {
	return a.Converge(x0, maxSteps)
}

// SequentialAcyclic reports whether the automaton's full sequential phase
// space is cycle-free — true for every monotone symmetric (threshold) rule
// (Theorem 1), false e.g. for XOR. The automaton must have at most
// phasespace.MaxSequentialNodes nodes.
func SequentialAcyclic(a *Automaton) bool {
	_, ok := phasespace.BuildSequential(a).Acyclic()
	return ok
}

// ParallelCensus enumerates the full parallel phase space and returns its
// census (fixed points, proper cycles, transients, Garden-of-Eden states).
func ParallelCensus(a *Automaton) Census {
	return phasespace.BuildParallel(a).TakeCensus()
}

// HasTwoCycle reports whether x lies on a proper temporal 2-cycle of the
// parallel map — the Lemma 1(i) / Corollary 1 certificate.
func HasTwoCycle(a *Automaton, x Config) bool { return a.IsTwoCycle(x) }

// InterleavingGranularity reports whether the parallel step from start can
// be reproduced by sequential interleavings at (fetch/store) micro-op
// granularity and at whole-node-update granularity, respectively — the §5
// experiment. It returns interleave.ErrTooLarge past the brute-force caps
// (more than 6 nodes); interleave.PORSearch answers the same question at
// larger sizes.
func InterleavingGranularity(a *Automaton, start Config) (micro, atomic bool, err error) {
	rep, err := interleave.CheckRecovery(a, start)
	if err != nil {
		return false, false, err
	}
	return rep.MicroReaches, rep.AtomicReaches, nil
}

// SpaceTime writes an ASCII space-time diagram of the parallel orbit.
func SpaceTime(w io.Writer, a *Automaton, x0 Config, steps int) error {
	return render.SpaceTime(w, a, x0, steps)
}
