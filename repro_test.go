package repro_test

import (
	"strings"
	"testing"

	"repro"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: parallel MAJORITY ring oscillates,
	// sequential never cycles.
	a := repro.MustNew(repro.Ring(8, 1), repro.Majority(1))
	alt := repro.Alternating(8, 0)
	if !repro.HasTwoCycle(a, alt) {
		t.Fatal("alternating configuration should lie on a parallel 2-cycle")
	}
	if !repro.SequentialAcyclic(a) {
		t.Fatal("sequential MAJORITY phase space should be acyclic")
	}
	res := repro.Converge(a, alt, 100)
	if res.Period != 2 {
		t.Fatalf("Converge period = %d, want 2", res.Period)
	}
}

func TestFacadeCensus(t *testing.T) {
	a := repro.MustNew(repro.Ring(10, 1), repro.Majority(1))
	c := repro.ParallelCensus(a)
	if c.ProperCycles == 0 || c.CyclesWithIncomingTransients != 0 {
		t.Fatalf("census %+v", c)
	}
}

func TestFacadeInterleavingGranularity(t *testing.T) {
	a := repro.MustNew(repro.Ring(4, 1), repro.Majority(1))
	micro, atomic, err := repro.InterleavingGranularity(a, repro.Alternating(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !micro || atomic {
		t.Fatalf("micro=%v atomic=%v; want true,false", micro, atomic)
	}
}

func TestFacadeXORContrast(t *testing.T) {
	x := repro.MustNew(repro.Ring(4, 1), repro.XOR())
	if repro.SequentialAcyclic(x) {
		t.Fatal("sequential XOR should have cycles")
	}
}

func TestFacadeThresholdAndElementary(t *testing.T) {
	// Rule 232 is MAJORITY; both constructions must agree exhaustively.
	a1 := repro.MustNew(repro.Ring(7, 1), repro.Majority(1))
	a2 := repro.MustNew(repro.Ring(7, 1), repro.Elementary(232))
	c1 := repro.ParallelCensus(a1)
	c2 := repro.ParallelCensus(a2)
	if c1 != c2 {
		t.Fatalf("census mismatch:\n%+v\n%+v", c1, c2)
	}
	// Threshold(2) on radius-1 ring is also majority-of-3.
	a3 := repro.MustNew(repro.Ring(7, 1), repro.Threshold(2))
	if c3 := repro.ParallelCensus(a3); c3 != c1 {
		t.Fatalf("threshold census mismatch: %+v vs %+v", c3, c1)
	}
}

func TestFacadeScheduleAndParse(t *testing.T) {
	c, err := repro.ParseConfig("0101")
	if err != nil || c.N() != 4 {
		t.Fatalf("ParseConfig: %v", err)
	}
	if repro.RoundRobin(3).Next() != 0 {
		t.Error("RoundRobin broken")
	}
	s := repro.RandomFair(5, 1)
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		seen[s.Next()] = true
	}
	if len(seen) != 5 {
		t.Error("RandomFair first round incomplete")
	}
}

func TestFacadeSpaceTime(t *testing.T) {
	a := repro.MustNew(repro.Ring(6, 1), repro.Majority(1))
	var b strings.Builder
	if err := repro.SpaceTime(&b, a, repro.Alternating(6, 0), 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "#.#.#.") {
		t.Errorf("diagram:\n%s", b.String())
	}
}

func TestFacadeLine(t *testing.T) {
	// Lines work with arity-agnostic rules (truncated borders).
	a := repro.MustNew(repro.Line(5, 1), repro.Threshold(2))
	res := repro.Converge(a, repro.Alternating(5, 0), 100)
	if res.Outcome.String() == "unresolved" {
		t.Fatal("line threshold CA did not settle")
	}
}
