// Integration tests: cross-package equivalences that pin the five engines
// (scalar automaton, packed 1-D kernel, packed 2-D kernel, asynchronous
// executor, SDS sweeps, block-sequential sweeps) to one another on shared
// workloads, and end-to-end reproduction flows through the facade.
package repro_test

import (
	"math/rand"
	"testing"

	"repro"
	"repro/internal/async"
	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/phasespace"
	"repro/internal/rule"
	"repro/internal/sds"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/threshnet"
	"repro/internal/update"
	"repro/internal/wolfram"
)

// TestFiveEnginesAgreeOnParallelOrbit drives the same MAJORITY ring through
// every implementation of the synchronous semantics and demands bit-equal
// trajectories.
func TestFiveEnginesAgreeOnParallelOrbit(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for _, n := range []int{64, 127, 512} {
		x0 := config.Random(rng, n, 0.5)
		a := automaton.MustNew(space.Ring(n, 1), rule.Majority(1))
		nw, err := threshnet.FromThresholdCA(a)
		if err != nil {
			t.Fatal(err)
		}
		packed := sim.NewMajorityRing(n, 1, x0)

		scalar := x0.Clone()
		tmp := config.New(n)
		netCur := x0.Clone()
		netTmp := config.New(n)
		const steps = 12
		for s := 0; s < steps; s++ {
			// scalar automaton
			a.Step(tmp, scalar)
			scalar, tmp = tmp, scalar
			// packed kernel
			packed.Step()
			// weighted network
			nw.Step(netTmp, netCur)
			netCur, netTmp = netTmp, netCur
			// block-sequential with one full block == parallel step
			blockCur := x0.Clone()
			// (recompute from scratch each time to exercise BlockMap)
			for k := 0; k <= s; k++ {
				a.BlockSweep(blockCur, automaton.ContiguousBlocks(n, n))
			}
			if !scalar.Equal(packed.Config()) {
				t.Fatalf("n=%d step %d: scalar vs packed divergence", n, s)
			}
			if !scalar.Equal(netCur) {
				t.Fatalf("n=%d step %d: scalar vs threshold-network divergence", n, s)
			}
			if !scalar.Equal(blockCur) {
				t.Fatalf("n=%d step %d: scalar vs full-block divergence", n, s)
			}
		}
		// asynchronous lockstep over the whole horizon
		aca := async.RunLockstep(a, x0, steps)
		if !scalar.Equal(aca) {
			t.Fatalf("n=%d: scalar vs lockstep-ACA divergence", n)
		}
	}
}

// TestSequentialEnginesAgree drives identical update orders through the
// automaton, the SDS sweep map, the block-sequential singleton sweep, the
// serial ACA, and the weighted network.
func TestSequentialEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 48
	a := automaton.MustNew(space.Ring(n, 1), rule.Majority(1))
	nw, err := threshnet.FromThresholdCA(a)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x0 := config.Random(rng, n, 0.5)
		perm := rng.Perm(n)

		viaSweep := x0.Clone()
		a.Sweep(viaSweep, perm)

		viaSDS := config.New(n)
		sds.MustNew(a, perm).Map(viaSDS, x0)

		viaBlocks := x0.Clone()
		blocks := make([][]int, n)
		for i, p := range perm {
			blocks[i] = []int{p}
		}
		a.BlockSweep(viaBlocks, blocks)

		viaACA := async.RunSerial(a, x0, perm)

		viaNet := x0.Clone()
		for _, i := range perm {
			nw.UpdateNode(viaNet, i)
		}

		for name, got := range map[string]config.Config{
			"sds": viaSDS, "blocks": viaBlocks, "aca": viaACA, "net": viaNet,
		} {
			if !viaSweep.Equal(got) {
				t.Fatalf("trial %d: %s sweep differs from automaton sweep", trial, name)
			}
		}
	}
}

// TestEndToEndDichotomyPipeline is the full reproduction flow on one
// automaton: census → cycles → sequential acyclicity → energy explanation →
// micro-op recovery, all consistent with each other.
func TestEndToEndDichotomyPipeline(t *testing.T) {
	n := 10
	a := repro.MustNew(repro.Ring(n, 1), repro.Majority(1))

	census := repro.ParallelCensus(a)
	p := phasespace.BuildParallel(a)
	if census.ProperCycles != len(p.ProperCycles()) {
		t.Fatal("census and cycle list disagree")
	}
	// Every cycle state is reachable... and is an alternating-type pattern
	// whose energy stalls under the bilinear form.
	nw, err := energy.FromAutomaton(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, cyc := range p.ProperCycles() {
		x := config.FromIndex(cyc[0], n)
		y := config.FromIndex(cyc[1], n)
		if nw.Bilinear2E(x, y) != nw.Bilinear2E(y, x) {
			t.Fatal("bilinear energy not symmetric on a 2-cycle")
		}
		if !a.IsTwoCycle(x) {
			t.Fatal("phase-space cycle not confirmed by the orbit engine")
		}
		// No sequential order reaches back: x's sequential reachable set
		// must not contain x after leaving (acyclicity already guarantees
		// this; spot-check the facade agrees).
		if !repro.SequentialAcyclic(a) {
			t.Fatal("facade disagrees with phasespace acyclicity")
		}
		// Micro-op interleavings recover the cycle step on a small window.
		if n <= 6 {
			micro, atomic, err := repro.InterleavingGranularity(a, x)
			if err != nil {
				t.Fatal(err)
			}
			if !micro || atomic {
				t.Fatal("granularity result inconsistent")
			}
		}
	}
}

// TestWolframThresholdsMatchRulePackage cross-checks the two independent
// notions of "threshold rule" (wolfram census vs rule analysis vs census of
// dynamics).
func TestWolframThresholdsMatchRulePackage(t *testing.T) {
	c := wolfram.TakeCensus(5)
	for _, code := range c.Thresholds {
		k, ok := rule.IsThreshold(rule.Elementary(code), 3)
		if !ok {
			t.Fatalf("census threshold %d not a rule-package threshold", code)
		}
		// The equivalent Threshold value generates the same automaton
		// dynamics on a ring.
		n := 7
		a1 := automaton.MustNew(space.Ring(n, 1), rule.Elementary(code))
		a2 := automaton.MustNew(space.Ring(n, 1), rule.Threshold{K: k})
		s1 := phasespace.BuildParallel(a1)
		s2 := phasespace.BuildParallel(a2)
		for x := uint64(0); x < s1.Size(); x++ {
			if s1.Successor(x) != s2.Successor(x) {
				t.Fatalf("rule %d vs threshold k=%d differ at config %d", code, k, x)
			}
		}
	}
}

// TestFairScheduleTerminationBudget ties the energy bound to actual
// convergence behavior across schedules and sizes.
func TestFairScheduleTerminationBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 40} {
		a := automaton.MustNew(space.Ring(n, 1), rule.Majority(1))
		nw, err := energy.FromAutomaton(a)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := nw.Bounds()
		budget := hi - lo
		for trial := 0; trial < 5; trial++ {
			c := config.Random(rng, n, 0.5)
			changes := 0
			sched := update.NewRoundRobin(n)
			for !a.FixedPoint(c) {
				if a.UpdateNode(c, sched.Next()) {
					changes++
				}
				if int64(changes) > budget {
					t.Fatalf("n=%d: changes exceeded energy budget", n)
				}
			}
		}
	}
}

// TestTorusPackedMatchesAutomatonOrbit pins the 2-D kernel to the scalar
// engine over a longer horizon, including the 2-cycle regime.
func TestTorusPackedMatchesAutomatonOrbit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, h := 16, 12
	sp := space.Torus(w, h)
	a := automaton.MustNew(sp, rule.Threshold{K: 3})
	x0 := config.Random(rng, w*h, 0.5)
	s := sim.NewMajorityTorus(w, h, x0)
	cur := x0.Clone()
	tmp := config.New(w * h)
	for step := 0; step < 40; step++ {
		s.Step()
		a.Step(tmp, cur)
		cur, tmp = tmp, cur
		if !cur.Equal(s.Config()) {
			t.Fatalf("step %d: 2-D divergence", step)
		}
	}
}
