// Associative memory from the paper's threshold-network roots: the
// convergence theory behind Theorem 1 (Goles & Martínez, paper ref [8]) is
// exactly what makes Hopfield networks work — sequential threshold updates
// descend an energy landscape and must stop at a fixed point, so stored
// patterns become recallable attractors.
//
// This example stores 8×8 glyphs in a Hebbian network, corrupts them, and
// watches sequential threshold dynamics pull the probes back.
//
// Run with: go run ./examples/hopfield
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/threshnet"
)

const side = 8

// glyph parses an 8×8 drawing into a ±1 pattern.
func glyph(rows [side]string) threshnet.Pattern {
	p := make(threshnet.Pattern, side*side)
	for y, row := range rows {
		for x := 0; x < side; x++ {
			if row[x] == '#' {
				p[y*side+x] = 1
			} else {
				p[y*side+x] = -1
			}
		}
	}
	return p
}

func draw(p threshnet.Pattern) {
	for y := 0; y < side; y++ {
		fmt.Print("    ")
		for x := 0; x < side; x++ {
			if p[y*side+x] == 1 {
				fmt.Print("#")
			} else {
				fmt.Print(".")
			}
		}
		fmt.Println()
	}
}

func main() {
	patterns := map[string]threshnet.Pattern{
		"cross": glyph([side]string{
			"...##...",
			"...##...",
			"...##...",
			"########",
			"########",
			"...##...",
			"...##...",
			"...##...",
		}),
		"frame": glyph([side]string{
			"########",
			"#......#",
			"#......#",
			"#......#",
			"#......#",
			"#......#",
			"#......#",
			"########",
		}),
		"stripes": glyph([side]string{
			"##..##..",
			"##..##..",
			"##..##..",
			"##..##..",
			"##..##..",
			"##..##..",
			"##..##..",
			"##..##..",
		}),
	}

	h := threshnet.NewHopfield(side * side)
	for _, p := range patterns {
		h.Store(p)
	}
	fmt.Printf("stored %d glyphs in a %d-neuron Hebbian threshold network\n", len(patterns), side*side)

	rng := rand.New(rand.NewSource(7))
	for name, p := range patterns {
		probe := p.Corrupt(rng, 12) // flip 12 of 64 cells
		fmt.Printf("\n=== %s: probe corrupted in %d cells ===\n", name, probe.Hamming(p))
		fmt.Println("  probe:")
		draw(probe)
		before := h.Energy2(probe)
		recalled, ok := h.Recall(probe, 1, 100)
		fmt.Printf("  energy %d -> %d, converged=%v, residual errors=%d\n",
			before, h.Energy2(recalled), ok, recalled.Hamming(p))
		fmt.Println("  recalled:")
		draw(recalled)
	}

	fmt.Println("\nsequential threshold dynamics can only descend in energy (Theorem 1's")
	fmt.Println("mechanism), so every recall terminates — no schedule can make it cycle.")
}
