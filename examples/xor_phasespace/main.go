// Figure 1, regenerated: the complete phase spaces of the paper's two-node
// XOR cellular automaton under parallel and sequential update disciplines,
// printed both as transition tables and as Graphviz DOT.
//
// Run with: go run ./examples/xor_phasespace
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/phasespace"
	"repro/internal/rule"
	"repro/internal/space"
)

func main() {
	// Two nodes, each reading both states, computing XOR: the Fig. 1 machine.
	a := automaton.MustNew(space.CompleteGraph(2), rule.XOR{})

	fmt.Println("=== Figure 1(a): parallel phase space ===")
	p := phasespace.BuildParallel(a)
	for x := uint64(0); x < p.Size(); x++ {
		fmt.Printf("  %s -> %s", config.FromIndex(x, 2), config.FromIndex(p.Successor(x), 2))
		if p.IsFixedPoint(x) {
			fmt.Print("   (fixed point: the global sink)")
		}
		fmt.Println()
	}
	fmt.Printf("  every configuration reaches 00 within 2 steps (max transient %d)\n\n",
		p.TakeCensus().MaxTransientLen)

	fmt.Println("=== Figure 1(b): sequential phase space ===")
	s := phasespace.BuildSequential(a)
	for x := uint64(0); x < s.Size(); x++ {
		for i := 0; i < 2; i++ {
			y := s.Successor(x, i)
			marker := ""
			if y == x {
				marker = " (self-loop)"
			}
			fmt.Printf("  %s --node %d--> %s%s\n",
				config.FromIndex(x, 2), i+1, config.FromIndex(y, 2), marker)
		}
	}
	fmt.Printf("\n  pseudo-fixed points: ")
	for _, x := range s.PseudoFixedPoints() {
		fmt.Printf("%s ", config.FromIndex(x, 2))
	}
	fmt.Printf("\n  temporal 2-cycles:   ")
	for _, pair := range s.TwoCycles() {
		fmt.Printf("{%s,%s} ", config.FromIndex(pair[0], 2), config.FromIndex(pair[1], 2))
	}
	fmt.Printf("\n  unreachable states:  ")
	for _, x := range s.Unreachable() {
		fmt.Printf("%s ", config.FromIndex(x, 2))
	}
	fmt.Println("\n\n  → sequentially, 00 can never be reached: the union of all")
	fmt.Println("    interleavings does not capture the parallel computation.")

	// DOT export for rendering with Graphviz.
	fmt.Println("\n=== DOT (sequential, Fig 1(b)) ===")
	if err := s.WriteDOT(os.Stdout, "fig1b", false); err != nil {
		log.Fatal(err)
	}
}
