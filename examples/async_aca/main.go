// §4's genuinely asynchronous cellular automata (ACA), demonstrated: no
// global clock, and communication happens through delayed messages. The
// ACA's nondeterminism subsumes both the classical parallel CA (choose
// lockstep timing) and every sequential CA (choose serialized timing with
// zero latency) — and with stale reads it resurrects the threshold
// two-cycle that Theorem 1 forbids to all sequential executions.
//
// Run with: go run ./examples/async_aca
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/async"
	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/render"
	"repro/internal/rule"
	"repro/internal/space"
	"repro/internal/update"
)

func main() {
	const n = 10
	a := automaton.MustNew(space.Ring(n, 1), rule.Majority(1))
	alt := config.Alternating(n, 0)

	fmt.Println("1. ACA with lockstep timing and latency ½ == classical parallel CA:")
	for rounds := 1; rounds <= 4; rounds++ {
		got := async.RunLockstep(a, alt, rounds)
		fmt.Printf("   after %d rounds: %s\n", rounds, render.Row(got))
	}
	fmt.Println("   → the Lemma 1(i) oscillation lives inside the asynchronous model.")

	fmt.Println("\n2. ACA with serialized timing and zero latency == sequential CA:")
	rng := rand.New(rand.NewSource(3))
	order := make([]int, 3*n)
	for i := range order {
		order[i] = rng.Intn(n)
	}
	aca := async.RunSerial(a, alt, order)
	sca := alt.Clone()
	a.RunSequential(sca, update.MustSequence(n, order), len(order))
	fmt.Printf("   ACA(serial): %s\n   SCA:         %s\n   identical: %v\n",
		render.Row(aca), render.Row(sca), aca.Equal(sca))

	fmt.Println("\n3. Stale reads let the ACA revisit configurations — impossible for ANY")
	fmt.Println("   sequential execution of a threshold CA (Theorem 1):")
	e := async.NewEngine(a, alt, async.ConstantLatency(0.5), 1)
	for t := 1; t <= 8; t++ {
		for i := 0; i < n; i++ {
			e.ScheduleUpdate(float64(t), i)
		}
	}
	seen := map[uint64]int{}
	e.OnUpdate = func(tm float64, node int, old, new uint8) {
		if old != new && node == n-1 { // snapshot once per "round tail"
			idx := e.Config().Index()
			seen[idx]++
			fmt.Printf("   t=%.1f  %s  (visit #%d)\n", tm, render.Row(e.Config()), seen[idx])
		}
	}
	e.Run(1 << 20)

	fmt.Println("\n4. With zero latency, random asynchronous timing can never cycle;")
	fmt.Println("   a fair run settles into a fixed point:")
	e2 := async.NewEngine(a, alt, async.ConstantLatency(0), 9)
	tnow := 0.0
	for i := 0; i < 40*n; i++ {
		tnow += 0.5 + rng.Float64()
		e2.ScheduleUpdate(tnow, rng.Intn(n))
	}
	rev := e2.TraceRevisits(1 << 20)
	final := e2.Config()
	fmt.Printf("   revisits: %d; final: %s; fixed point: %v\n",
		rev, render.Row(final), a.FixedPoint(final))
}
