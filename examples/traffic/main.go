// Elementary rule 184, the minimal traffic model — a number-conserving CA
// from the broader rule space the paper's references survey (Wolfram,
// refs [20-22]). Cars (1s) advance into empty cells (0s); density is
// conserved exactly (verified by internal/wolfram's census), and the system
// self-organizes: below density ½ jams dissolve into free flow, above ½
// free-flow holes dissolve into a moving jam.
//
// Run with: go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/render"
	"repro/internal/rule"
	"repro/internal/space"
	"repro/internal/wolfram"
)

func main() {
	cls := wolfram.Classify(184)
	fmt.Printf("rule 184: number-conserving=%v, monotone=%v, symmetric=%v\n\n",
		cls.NumberConserving, cls.Monotone, cls.Symmetric)

	const n = 72
	rng := rand.New(rand.NewSource(5))

	for _, densityP := range []float64{0.35, 0.65} {
		x0 := config.Random(rng, n, densityP)
		a := automaton.MustNew(space.Ring(n, 1), rule.Elementary(184))
		fmt.Printf("=== density %.2f: %d cars on %d cells ===\n", densityP, x0.Ones(), n)
		if err := render.SpaceTime(os.Stdout, a, x0, 18); err != nil {
			log.Fatal(err)
		}
		// Conservation check over a long run.
		cur := x0.Clone()
		next := config.New(n)
		for t := 0; t < 500; t++ {
			a.Step(next, cur)
			cur, next = next, cur
			if cur.Ones() != x0.Ones() {
				log.Fatalf("car count changed at t=%d: %d -> %d", t, x0.Ones(), cur.Ones())
			}
		}
		fmt.Printf("→ after 500 steps: still exactly %d cars (conservation holds)\n\n", cur.Ones())
	}

	fmt.Println("contrast with the paper's MAJORITY rule, which destroys density")
	fmt.Println("information (it is not number-conserving) but always converges:")
	x0 := config.Random(rng, n, 0.5)
	maj := automaton.MustNew(space.Ring(n, 1), rule.Majority(1))
	res := maj.Converge(x0.Clone(), 1000)
	fmt.Printf("  majority from %d/%d ones → %s with %d/%d ones\n",
		x0.Ones(), n, res.Outcome, res.Final.Ones(), n)
}
