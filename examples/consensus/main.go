// Local majority voting as a multi-agent consensus protocol — the
// application domain the authors' broader work on large-scale multi-agent
// systems motivates. Each agent repeatedly adopts the majority opinion of
// its neighborhood. The paper's theory says exactly what can happen:
// convergence to a fixed point or a 2-cycle (Proposition 1) under the
// synchronous protocol, guaranteed convergence under fair asynchronous
// (sequential) operation (Theorem 1). What it does NOT guarantee is
// *correct* consensus — and the topology decides how often the network
// agrees at all.
//
// Run with: go run ./examples/consensus
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/rule"
	"repro/internal/space"
	"repro/internal/update"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	topologies := []struct {
		name string
		sp   space.Space
	}{
		{"ring n=60 r=1", space.Ring(60, 1)},
		{"ring n=60 r=3", space.Ring(60, 3)},
		{"torus 8x8", space.Torus(8, 8)},
		{"hypercube d=6", space.Hypercube(6)},
		{"complete n=61", space.CompleteGraph(61)},
	}
	const trials = 200

	fmt.Println("synchronous majority voting from random opinions (trials per topology:", trials, ")")
	fmt.Printf("%-16s %-10s %-10s %-10s %-12s\n", "topology", "consensus", "split", "2-cycle", "mean steps")
	for _, tp := range topologies {
		deg, _ := space.Regular(tp.sp)
		a := automaton.MustNew(tp.sp, rule.StrictMajorityOf(deg))
		n := tp.sp.N()
		consensus, split, cycle := 0, 0, 0
		steps := 0
		for trial := 0; trial < trials; trial++ {
			x0 := config.Random(rng, n, 0.5)
			res := a.Converge(x0, 400)
			steps += res.Transient
			switch {
			case res.Outcome == automaton.CycleOutcome:
				cycle++
			case res.Final.Ones() == 0 || res.Final.Ones() == n:
				consensus++
			default:
				split++
			}
		}
		fmt.Printf("%-16s %-10d %-10d %-10d %-12.1f\n",
			tp.name, consensus, split, cycle, float64(steps)/trials)
	}
	fmt.Println("\n→ dense topologies reach global consensus; sparse rings freeze into")
	fmt.Println("  opinion blocks (the striped fixed points of the paper's phase-space census).")

	// Asynchronous operation: Theorem 1 in protocol form — no schedule can
	// livelock the voters, even on topologies whose synchronous protocol
	// 2-cycles.
	fmt.Println("\nasynchronous (random-fair) operation on the 8x8 torus from a checkerboard,")
	fmt.Println("the worst case for the synchronous protocol (it oscillates forever):")
	sp := space.Torus(8, 8)
	part, _ := space.Bipartition(sp)
	deg, _ := space.Regular(sp)
	a := automaton.MustNew(sp, rule.StrictMajorityOf(deg))
	sync := a.Converge(config.FromParts(part), 100)
	fmt.Printf("  synchronous: %s (period %d)\n", sync.Outcome, sync.Period)
	c := config.FromParts(part)
	sched := update.NewRandomFair(sp.N(), 7)
	microSteps, _ := a.ConvergeSequential(c, sched, 100*sp.N()*sp.N())
	fmt.Printf("  asynchronous: fixed point after %d micro-steps, consensus=%v\n",
		microSteps, c.Ones() == 0 || c.Ones() == sp.N())
}
