// Quickstart: the paper's headline result in a screenful.
//
// A parallel MAJORITY cellular automaton on an even ring oscillates forever
// on the alternating configuration (a temporal 2-cycle), yet NO sequential
// ordering of the very same node updates can ever cycle — the interleaving
// semantics of concurrency fails at node-update granularity.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	const n = 12
	a, err := repro.New(repro.Ring(n, 1), repro.Majority(1))
	if err != nil {
		log.Fatal(err)
	}

	alt := repro.Alternating(n, 0)
	fmt.Printf("parallel MAJORITY on a %d-ring, starting from %s:\n\n", n, alt)
	if err := repro.SpaceTime(os.Stdout, a, alt, 4); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nis %s on a parallel 2-cycle?        %v  (Lemma 1(i))\n",
		alt, repro.HasTwoCycle(a, alt))
	fmt.Printf("can ANY sequential order ever cycle? %v  (Lemma 1(ii))\n",
		!repro.SequentialAcyclic(a))

	res := repro.Converge(a, alt, 100)
	fmt.Printf("parallel orbit classification:       %s, period %d\n\n",
		res.Outcome, res.Period)

	// The same automaton under a fair sequential schedule must instead
	// settle into a fixed point (Theorem 1).
	c := alt.Clone()
	sched := repro.RandomFair(n, 42)
	steps := 0
	for !a.FixedPoint(c) {
		a.UpdateNode(c, sched.Next())
		steps++
	}
	fmt.Printf("sequential (random-fair) run settled at fixed point %s after %d micro-steps\n",
		c, steps)

	census := repro.ParallelCensus(a)
	fmt.Printf("\nfull phase-space census: %d configs, %d fixed points, %d two-cycles (none fed by transients: %v)\n",
		census.Configs, census.FixedPoints, census.ProperCycles,
		census.CyclesWithIncomingTransients == 0)
}
