// The HPC side of the reproduction: CA as "an abstraction of massively
// parallel computers" (paper §1, ref [7]). A bit-packed synchronous
// MAJORITY simulator processes 64 cells per machine word; this example
// steps a multi-million-cell ring, confirms Proposition 1 at scale
// (every orbit settles into a fixed point or a 2-cycle), and measures
// throughput of the scalar engine vs the packed kernel vs the packed
// kernel with goroutine-parallel word chunks.
//
// Run with: go run ./examples/bigring
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/rule"
	"repro/internal/sim"
	"repro/internal/space"
)

func main() {
	const n = 1 << 22 // ~4.2 million cells
	const steps = 10
	rng := rand.New(rand.NewSource(1))
	x0 := config.Random(rng, n, 0.5)

	fmt.Printf("ring of %d cells, MAJORITY r=1, %d synchronous steps\n\n", n, steps)

	// Scalar reference engine.
	a := automaton.MustNew(space.Ring(n, 1), rule.Majority(1))
	src, dst := x0.Clone(), config.New(n)
	start := time.Now()
	for i := 0; i < steps; i++ {
		a.Step(dst, src)
		src, dst = dst, src
	}
	scalar := time.Since(start)
	report("scalar engine", n, steps, scalar)

	// Packed kernel, one goroutine.
	s1 := sim.NewMajorityRing(n, 1, x0)
	start = time.Now()
	for i := 0; i < steps; i++ {
		s1.Step()
	}
	packed := time.Since(start)
	report("packed kernel (1 worker)", n, steps, packed)

	// Packed kernel, all cores.
	s2 := sim.NewMajorityRing(n, 1, x0)
	start = time.Now()
	for i := 0; i < steps; i++ {
		s2.StepParallel(0)
	}
	packedPar := time.Since(start)
	report(fmt.Sprintf("packed kernel (%d workers)", runtime.GOMAXPROCS(0)), n, steps, packedPar)

	// All three engines agree bit-for-bit.
	fmt.Printf("\nengines agree: %v\n",
		src.Equal(s1.Config()) && src.Equal(s2.Config()))
	fmt.Printf("packed speedup over scalar: %.1fx\n\n", scalar.Seconds()/packed.Seconds())

	// Proposition 1 at scale: every random start settles to period ≤ 2.
	fmt.Println("Proposition 1 at scale (random starts, radius 1..3):")
	for r := 1; r <= 3; r++ {
		m := 1 << 16
		s := sim.NewMajorityRing(m, r, config.Random(rng, m, 0.5))
		transient, period, ok := s.FindPeriod(4 * m)
		fmt.Printf("  n=%d r=%d: settled=%v transient=%d period=%d\n", m, r, ok, transient, period)
	}

	// And the 2-cycle certificate survives at any size (Lemma 1(i)).
	big := sim.NewMajorityRing(n, 1, config.Alternating(n, 0))
	_, period, _ := big.FindPeriod(10)
	fmt.Printf("\nalternating start on %d cells: period %d (the Lemma 1(i) oscillation)\n", n, period)
}

func report(name string, n, steps int, el time.Duration) {
	rate := float64(n) * float64(steps) / el.Seconds()
	fmt.Printf("%-28s %10v   %.2e cell-updates/sec\n", name, el.Round(time.Millisecond), rate)
}
