// Lemma 1 and Corollary 1, visually: temporal two-cycles of parallel
// threshold CA at every radius, their absence under every sequential order,
// and the Lyapunov energy that explains why.
//
// Run with: go run ./examples/majority_cycles
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/phasespace"
	"repro/internal/render"
	"repro/internal/rule"
	"repro/internal/space"
	"repro/internal/update"
)

func main() {
	// Lemma 1(i): the alternating 2-cycle, drawn.
	n := 24
	a := automaton.MustNew(space.Ring(n, 1), rule.Majority(1))
	fmt.Println("Lemma 1(i): parallel MAJORITY r=1 on an even ring oscillates:")
	if err := render.SpaceTime(os.Stdout, a, config.Alternating(n, 0), 4); err != nil {
		log.Fatal(err)
	}

	// Corollary 1: for every radius, the block pattern 0^r 1^r … oscillates.
	fmt.Println("\nCorollary 1: block two-cycles for radii 1..4:")
	for r := 1; r <= 4; r++ {
		nr := 2 * r * 6
		ar := automaton.MustNew(space.Ring(nr, r), rule.Majority(r))
		sigma := config.AlternatingBlocks(nr, r, 0)
		fmt.Printf("  r=%d n=%-3d %s  two-cycle: %v\n",
			r, nr, render.Row(sigma), ar.IsTwoCycle(sigma))
	}

	// Lemma 1(ii)/Theorem 1: no sequential order can cycle — exhaustively.
	fmt.Println("\nLemma 1(ii): sequential phase spaces are cycle-free for every threshold rule:")
	for _, th := range rule.AllThresholds(3) {
		sa := automaton.MustNew(space.Ring(10, 1), th)
		_, acyclic := phasespace.BuildSequential(sa).Acyclic()
		fmt.Printf("  %-16s acyclic over ALL update sequences: %v\n", th.Name(), acyclic)
	}

	// Why: the energy function strictly decreases on every sequential flip.
	fmt.Println("\nThe mechanism (Goles–Martínez energy): one fair sequential run from the")
	fmt.Println("alternating configuration, printing 2E after every state change:")
	nw, err := energy.FromAutomaton(a)
	if err != nil {
		log.Fatal(err)
	}
	c := config.Alternating(n, 0)
	sched := update.NewRandomFair(n, 7)
	fmt.Printf("  t=0    2E = %-5d %s\n", nw.Sequential2E(c), render.Row(c))
	changes := 0
	for t := 1; !a.FixedPoint(c); t++ {
		if a.UpdateNode(c, sched.Next()) {
			changes++
			fmt.Printf("  t=%-4d 2E = %-5d %s\n", t, nw.Sequential2E(c), render.Row(c))
		}
	}
	lo, hi := nw.Bounds()
	fmt.Printf("\n  %d state changes; energy can fall at most %d times → convergence is forced.\n",
		changes, hi-lo)
}
