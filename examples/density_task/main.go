// Density classification: what the paper's threshold CA can and cannot
// compute. Local MAJORITY — the paper's central rule — always converges
// (Proposition 1) but freezes into striped fixed points, failing the global
// task; the non-totalistic GKL rule (outside Theorem 1's monotone-symmetric
// class) propagates information and classifies ~80–90% of near-critical
// instances.
//
// Run with: go run ./examples/density_task
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/density"
	"repro/internal/render"
	"repro/internal/rule"
	"repro/internal/space"
)

func main() {
	const n = 79
	rng := rand.New(rand.NewSource(12))
	x0 := config.Random(rng, n, 0.60) // moderate 1-majority
	for 2*x0.Ones() == n {
		x0 = config.Random(rng, n, 0.60)
	}
	fmt.Printf("initial configuration: %d/%d ones (majority of 1s → should reach all-1s)\n\n", x0.Ones(), n)

	fmt.Println("=== local MAJORITY r=1 (the paper's rule): freezes into stripes ===")
	maj := automaton.MustNew(space.Ring(n, 1), rule.Majority(1))
	if err := render.SpaceTime(os.Stdout, maj, x0, 12); err != nil {
		log.Fatal(err)
	}
	res := maj.Converge(x0.Clone(), 1000)
	fmt.Printf("→ settled: %s, period %d, final density %d/%d (NOT a consensus)\n\n",
		res.Outcome, res.Period, res.Final.Ones(), n)

	fmt.Println("=== GKL r=3: information travels, consensus is reached ===")
	gkl := automaton.MustNew(space.Ring(n, 3), density.GKL())
	if err := render.SpaceTime(os.Stdout, gkl, x0, 24); err != nil {
		log.Fatal(err)
	}
	verdictGKL := density.ClassifyRun(gkl, x0, 1000)
	fmt.Printf("→ GKL verdict: %s\n\n", verdictGKL)

	fmt.Println("=== benchmark near the critical density (n=149) ===")
	for _, spec := range []struct {
		name   string
		r      rule.Rule
		radius int
	}{
		{"GKL", density.GKL(), 3},
		{"majority r=1", rule.Majority(1), 1},
		{"majority r=3", rule.Majority(3), 3},
	} {
		result := density.Benchmark(spec.name, spec.r, spec.radius, 149, 40, 3, 600)
		fmt.Printf("  %s\n", result)
	}
}
