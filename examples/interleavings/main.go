// The paper's granularity argument, end to end.
//
// §1.1: x = x+1 ‖ x = x+2 gives {3} when the statements are atomic, but
// {1,2,3} when their LOAD/ADD/STORE machine instructions interleave —
// recovering the "parallel" outcomes {1,2}.
//
// §5: the same refinement applied to a cellular automaton. Splitting each
// node update into FETCH and COMMIT lets a sequential interleaving
// reproduce the parallel MAJORITY step (and hence its two-cycle), which no
// interleaving of whole node updates can.
//
// Run with: go run ./examples/interleavings
package main

import (
	"fmt"

	"repro/internal/automaton"
	"repro/internal/config"
	"repro/internal/interleave"
	"repro/internal/rule"
	"repro/internal/space"
)

func main() {
	fmt.Println("=== §1.1: the sophomore parallel-programming exercise ===")
	progs := []interleave.Program{
		interleave.IncrementProgram(1), // x = x + 1
		interleave.IncrementProgram(2), // x = x + 2
	}
	atomic := interleave.AtomicOrders(0, progs)
	machine := interleave.Interleavings(0, progs)
	parallel := interleave.SimultaneousWrites(0, progs)
	fmt.Printf("  atomic statements, all orders:        outcomes %v\n", interleave.Values(atomic))
	fmt.Printf("  machine instructions, %2d interleavings: outcomes %v\n",
		total(machine), interleave.Values(machine))
	fmt.Printf("  simultaneous parallel writes:         outcomes %v\n", interleave.Values(parallel))
	fmt.Println("  → refining granularity recovers the parallel behaviors.")

	fmt.Println("\n=== §5: the same refinement on cellular automata ===")
	a := automaton.MustNew(space.Ring(5, 1), rule.Majority(1))
	start := config.Alternating(5, 0)
	rep, err := interleave.CheckRecovery(a, start)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  MAJORITY 5-ring from %s; parallel step F(x) = %s\n",
		start, config.FromIndex(rep.Parallel, 5))
	fmt.Printf("  whole-update interleavings (%4d orders):      reach F(x)? %v\n",
		rep.AtomicSchedules, rep.AtomicReaches)
	fmt.Printf("  fetch/commit micro-ops     (%4d interleavings): reach F(x)? %v\n",
		rep.MicroSchedules, rep.MicroReaches)
	fmt.Println("  → node updates are NOT atomic: only the finer decomposition")
	fmt.Println("    (read neighborhood / write state) restores interleaving semantics.")

	// The XOR pair of Figure 1, for contrast.
	x := automaton.MustNew(space.CompleteGraph(2), rule.XOR{})
	repx, err := interleave.CheckRecovery(x, config.MustParse("11"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n  two-node XOR from 11: atomic reaches F(x)=00? %v; micro-ops? %v\n",
		repx.AtomicReaches, repx.MicroReaches)
}

func total(m map[int64]int) int {
	s := 0
	for _, c := range m {
		s += c
	}
	return s
}
